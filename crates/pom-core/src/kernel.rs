//! Right-hand-side kernel selection and the sin/cos-split fast path.
//!
//! Evaluating Eq. (2) costs one transcendental per neighbor per stage in
//! the reference implementation — the dominant cost of every large-`N`
//! run. For the periodic potentials (`KuramotoSin`, and the sine branch of
//! `Desync`) the addition theorem
//!
//! ```text
//! sin(k·(θⱼ − θᵢ)) = sin(kθⱼ)·cos(kθᵢ) − cos(kθⱼ)·sin(kθᵢ)
//! ```
//!
//! turns `deg(i)` sine evaluations per oscillator into **one** sin/cos pair
//! per oscillator (computed in a vectorizable array pass) plus two
//! multiply–adds per neighbor. This module provides:
//!
//! * [`RhsKernel`] — the public selector between the bitwise-reference
//!   [`RhsKernel::Exact`] path and the [`RhsKernel::SinCosSplit`] fast
//!   path;
//! * a branch-free polynomial `sin`/`cos` array pass (Chebyshev fits on
//!   `|r| ≤ π/2` after modulo-π reduction, ≤ 1e-13 absolute error,
//!   runtime-dispatched to an AVX2+FMA version where the CPU has one);
//! * the split-kernel row loops over either a [`pom_topology::RingStencil`]
//!   (index-free, wrap rows peeled off the contiguous bulk) or a flat
//!   [`pom_topology::CsrView`].
//!
//! ## Accuracy policy
//!
//! `Exact` evaluates every pair interaction through `libm` (`f64::sin`,
//! `f64::tanh`, …) in ascending-neighbor order: results are bitwise
//! reproducible across runs, workspace reuse, thread counts *and*
//! machines, and identical to the pre-kernel-layer implementation. It is
//! the default and what reproduction tests pin against.
//!
//! `SinCosSplit` changes the arithmetic (split trig identity, polynomial
//! kernels, fixed-by-offset accumulation order, FMA contraction where the
//! CPU offers it). It stays within `~1e-12` of `Exact` per evaluation
//! (property-tested) and is *deterministic on a given machine* — bitwise
//! identical across reruns and across `rhs_threads` values — but not
//! bitwise portable across CPUs. Potentials without a sine structure
//! (`Tanh`) fall back to the exact per-pair math under this kernel and
//! still benefit from flat-CSR iteration and chunked parallelism.

use pom_topology::{CsrView, RingStencil};

/// Selects how the oscillator coupling sum is evaluated.
///
/// See the [module documentation](self) for the accuracy policy. The
/// kernel never changes *what* is computed — only how; campaign results
/// produced with `Exact` are the bitwise reference, `SinCosSplit` trades
/// `~1e-12` reproducibility for large-`N` throughput.
///
/// ```
/// use pom_core::{InitialCondition, PomBuilder, Potential, RhsKernel, SimOptions};
/// use pom_topology::Topology;
///
/// let build = |kernel: RhsKernel| {
///     PomBuilder::new(32)
///         .topology(Topology::ring(32, &[-1, 1]))
///         .potential(Potential::KuramotoSin)
///         .coupling(2.0)
///         .kernel(kernel)
///         .build()
///         .unwrap()
/// };
/// let init = InitialCondition::RandomSpread { amplitude: 0.8, seed: 9 };
/// let opts = SimOptions::new(5.0).samples(10);
/// let exact = build(RhsKernel::Exact).simulate_with(init.clone(), &opts).unwrap();
/// let split = build(RhsKernel::SinCosSplit).simulate_with(init, &opts).unwrap();
/// let (a, b) = (exact.trajectory().last().unwrap(), split.trajectory().last().unwrap());
/// for i in 0..32 {
///     assert!((a[i] - b[i]).abs() < 1e-9); // well within the 1e-12/eval policy
/// }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RhsKernel {
    /// Reference path: `libm` transcendentals, ascending-neighbor
    /// accumulation, bitwise identical to the pre-kernel-layer code.
    #[default]
    Exact,
    /// Fast path: per-evaluation `sin`/`cos` arrays + the angle-addition
    /// expansion for sine-structured potentials; `~1e-12` from `Exact`.
    SinCosSplit,
}

impl RhsKernel {
    /// Parse a spec/CLI name (`"exact"` or `"sincos"`/`"split"`).
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "exact" => Some(RhsKernel::Exact),
            "sincos" | "sin-cos" | "split" => Some(RhsKernel::SinCosSplit),
            _ => None,
        }
    }

    /// Canonical name for output tables.
    pub fn name(&self) -> &'static str {
        match self {
            RhsKernel::Exact => "exact",
            RhsKernel::SinCosSplit => "sincos",
        }
    }
}

/// Reusable `sin`/`cos` arrays for the split kernel, one pair of slots per
/// oscillator. Lives behind a `Mutex` in the model because the ODE-solver
/// contract evaluates the RHS through `&self`.
#[derive(Debug, Default)]
pub(crate) struct SplitScratch {
    buf: Vec<f64>,
}

impl SplitScratch {
    /// Borrow the `sin` and `cos` halves, grown to length `n` each.
    pub(crate) fn halves(&mut self, n: usize) -> (&mut [f64], &mut [f64]) {
        if self.buf.len() < 2 * n {
            self.buf.resize(2 * n, 0.0);
        }
        let (s, c) = self.buf.split_at_mut(n);
        (s, &mut c[..n])
    }
}

// ---------------------------------------------------------------------------
// Polynomial sin/cos array pass
// ---------------------------------------------------------------------------

/// Above this magnitude the two-part modulo-π reduction loses accuracy;
/// such elements (phases beyond ~10⁵ revolutions — far outside any
/// simulated span) fall back to `libm` individually.
const ARG_LIMIT: f64 = 1e6;

const INV_PI: f64 = std::f64::consts::FRAC_1_PI;
/// Shift that rounds to nearest when added to and subtracted from a
/// double whose magnitude is below 2⁵¹ (1.5·2⁵²).
const MAGIC: f64 = 6_755_399_441_055_744.0;
/// π split into a 53-bit head and its residual, for cancellation-free
/// `r = x − n·π` at moderate `n`. The head is deliberately spelled at
/// full double precision: this *is* `f64::consts::PI` (the lint cannot
/// tell a reduction constant from a lazy approximation), and the residual
/// carries the next 53 bits.
#[allow(clippy::approx_constant, clippy::excessive_precision)]
const PI_HI: f64 = 3.141_592_653_589_793_116;
#[allow(clippy::excessive_precision)]
const PI_LO: f64 = 1.224_646_799_147_353_2e-16;

/// Chebyshev fit of `sin(r)/r` in `z = r²` on `|r| ≤ π/2` (max abs error
/// of the reconstructed `sin`: 7.8e-14).
const SIN_Z: [f64; 7] = [
    0.999_999_999_999_949_4,
    -0.166_666_666_664_665_92,
    8.333_333_320_354_143e-3,
    -1.984_126_668_206_754_2e-4,
    2.755_695_281_427_974e-6,
    -2.503_026_436_708_62e-8,
    1.541_116_643_315_831_3e-10,
];
/// Chebyshev fit of `cos(r)` in `z = r²` on `|r| ≤ π/2` (max abs error
/// 2.5e-15).
const COS_Z: [f64; 8] = [
    0.999_999_999_999_997_6,
    -0.499_999_999_999_894_86,
    4.166_666_666_581_229e-2,
    -1.388_888_886_157_152_2e-3,
    2.480_158_295_670_555e-5,
    -2.755_694_171_701_834e-7,
    2.085_852_533_762_896e-9,
    -1.101_052_193_545_011_3e-11,
];

/// One polynomial sin/cos evaluation (branch-free; caller handles the
/// large-argument fallback).
#[inline(always)]
fn sincos_poly(x: f64) -> (f64, f64) {
    // n = round(x/π) via the magic-shift trick (round-to-nearest-even).
    let n = (x * INV_PI + MAGIC) - MAGIC;
    let r = x - n * PI_HI - n * PI_LO;
    // (−1)^n without integer conversion: parity = n − 2·round(n/2) ∈ {0, ±1}.
    let parity = n - 2.0 * ((0.5 * n + MAGIC) - MAGIC);
    let sign = 1.0 - 2.0 * parity * parity;
    let z = r * r;
    let mut p = SIN_Z[6];
    p = p * z + SIN_Z[5];
    p = p * z + SIN_Z[4];
    p = p * z + SIN_Z[3];
    p = p * z + SIN_Z[2];
    p = p * z + SIN_Z[1];
    p = p * z + SIN_Z[0];
    let mut q = COS_Z[7];
    q = q * z + COS_Z[6];
    q = q * z + COS_Z[5];
    q = q * z + COS_Z[4];
    q = q * z + COS_Z[3];
    q = q * z + COS_Z[2];
    q = q * z + COS_Z[1];
    q = q * z + COS_Z[0];
    ((sign * r) * p, sign * q)
}

/// Fill `s[j] = sin(k·x[j])`, `c[j] = cos(k·x[j])`.
///
/// Elements are independent, so any chunking of a larger array into calls
/// of this function produces identical values — the parallel executor may
/// split the pass freely without affecting results.
#[inline(always)]
fn sincos_pass_body(k: f64, xs: &[f64], s: &mut [f64], c: &mut [f64]) {
    // Main pass: branch- and call-free so the loop vectorizes. The
    // fallback scan below must stay OUT of this loop — a conditional
    // `libm` call in the body would force scalar code on every element.
    let n = xs.len();
    for j in 0..n {
        let x = k * xs[j];
        let (sj, cj) = sincos_poly(x);
        s[j] = sj;
        c[j] = cj;
    }
    // Rare fix-up: per-element decision, so results are independent of
    // how a larger array was chunked (deterministic across thread
    // counts). The branch is never taken for simulated phase spans.
    for j in 0..n {
        let x = k * xs[j];
        if x.abs() > ARG_LIMIT {
            let (sj, cj) = x.sin_cos();
            s[j] = sj;
            c[j] = cj;
        }
    }
}

/// A monomorphized pair interaction for the split kernel's inner loops.
pub(crate) trait PairTerm: Copy + Sync {
    /// Value of `V(θⱼ − θᵢ)` from the phase difference `x = θⱼ − θᵢ` and
    /// the precomputed `sin`/`cos` of `k·θⱼ` and `k·θᵢ`.
    fn eval(&self, x: f64, sj: f64, cj: f64, si: f64, ci: f64) -> f64;
}

/// Plain Kuramoto coupling `sin(θⱼ − θᵢ)` (`k = 1`).
#[derive(Clone, Copy)]
pub(crate) struct SinPair;

impl PairTerm for SinPair {
    #[inline(always)]
    fn eval(&self, _x: f64, sj: f64, cj: f64, si: f64, ci: f64) -> f64 {
        sj * ci - cj * si
    }
}

/// Desync potential: `−sin(k·x)` inside the horizon (`k = 3π/2σ`),
/// saturated `sgn(x)` beyond — branch-free select so the loop vectorizes.
#[derive(Clone, Copy)]
pub(crate) struct DesyncPair {
    pub sigma: f64,
}

impl PairTerm for DesyncPair {
    #[inline(always)]
    fn eval(&self, x: f64, sj: f64, cj: f64, si: f64, ci: f64) -> f64 {
        let split = -(sj * ci - cj * si);
        if x.abs() < self.sigma {
            split
        } else {
            1.0f64.copysign(x)
        }
    }
}

/// Accumulate the raw coupling sums of `rows` (a contiguous row range)
/// into `out` (`out[i - rows.start]`), iterating an index-free ring
/// stencil: for each offset the neighbor is `i + o` with a single peeled
/// wrap segment — no index array, no gather.
#[inline(always)]
fn split_rows_stencil_body<P: PairTerm>(
    p: P,
    stencil: &RingStencil,
    theta: &[f64],
    s: &[f64],
    c: &[f64],
    rows: std::ops::Range<usize>,
    out: &mut [f64],
) {
    let n = stencil.n();
    let lo = rows.start;
    let out = &mut out[..rows.len()];
    out.fill(0.0);
    for &o in stencil.offsets() {
        let o = o as usize;
        // Rows i with i + o < n read neighbor i + o; the rest wrap. Both
        // segments are contiguous streams (neighbor = i + const), which
        // is the point of the stencil path: no index array, no gather.
        let wrap = n - o;
        let split_at = rows.end.min(wrap).max(lo);
        let (bulk, wrapped) = out.split_at_mut(split_at - lo);
        for (v, i) in bulk.iter_mut().zip(lo..) {
            let j = i + o;
            *v += p.eval(theta[j] - theta[i], s[j], c[j], s[i], c[i]);
        }
        for (v, i) in wrapped.iter_mut().zip(split_at..) {
            let j = i + o - n;
            *v += p.eval(theta[j] - theta[i], s[j], c[j], s[i], c[i]);
        }
    }
}

/// Accumulate the raw coupling sums of `rows` into `out`, walking the flat
/// CSR arrays (arbitrary topologies).
#[inline(always)]
fn split_rows_csr_body<P: PairTerm>(
    p: P,
    csr: CsrView<'_>,
    theta: &[f64],
    s: &[f64],
    c: &[f64],
    rows: std::ops::Range<usize>,
    out: &mut [f64],
) {
    for (slot, i) in rows.enumerate() {
        let (ti, si, ci) = (theta[i], s[i], c[i]);
        let mut acc = 0.0;
        for &j in csr.row(i) {
            let j = j as usize;
            acc += p.eval(theta[j] - ti, s[j], c[j], si, ci);
        }
        out[slot] = acc;
    }
}

/// Ensemble twin of [`split_rows_stencil_body`]: `r` replicas interleaved
/// (component `(i, rep)` at `i·r + rep`). Interleaving keeps the stencil
/// walk a constant-offset stream — element `e = i·r + rep` reads its
/// neighbor at `e + o·r` (or `e + o·r − n·r` past the wrap), so the body
/// is literally the single-replica body with every index scaled by `r`:
/// offset-outer, two contiguous segments per offset, no index array, no
/// gather, and the same vectorization.
///
/// Bitwise contract: per component `(i, rep)` the terms are added in
/// `stencil.offsets()` order onto a zeroed accumulator — exactly the
/// per-element sequence of the single-replica body. Memory-roundtripping
/// the `f64` accumulator between offsets is exact, so batched sums equal
/// the single-replica sums bitwise.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn split_rows_stencil_ensemble_body<P: PairTerm>(
    p: P,
    stencil: &RingStencil,
    r: usize,
    theta: &[f64],
    s: &[f64],
    c: &[f64],
    rows: std::ops::Range<usize>,
    out: &mut [f64],
) {
    let n = stencil.n();
    let lo = rows.start;
    let out = &mut out[..rows.len() * r];
    out.fill(0.0);
    for &o in stencil.offsets() {
        let o = o as usize;
        // Rows i with i + o < n read neighbor i + o; the rest wrap. The
        // wrap boundary sits at row granularity, so in element space both
        // segments stay contiguous streams (neighbor = e + o·r − {0, n·r}).
        let wrap = n - o;
        let split_at = rows.end.min(wrap).max(lo);
        let (bulk, wrapped) = out.split_at_mut((split_at - lo) * r);
        for (v, e) in bulk.iter_mut().zip(lo * r..) {
            let j = e + o * r;
            *v += p.eval(theta[j] - theta[e], s[j], c[j], s[e], c[e]);
        }
        for (v, e) in wrapped.iter_mut().zip(split_at * r..) {
            let j = e + o * r - n * r;
            *v += p.eval(theta[j] - theta[e], s[j], c[j], s[e], c[e]);
        }
    }
}

/// Ensemble twin of [`split_rows_csr_body`]: row-outer / neighbor-middle /
/// replica-inner, so the CSR row scan (pointer chase, index decode) is
/// paid once per row instead of once per row per replica. Per component
/// `(i, rep)` the accumulation is ascending-neighbor onto a zeroed
/// accumulator — the single-replica order, hence bitwise identical sums.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn split_rows_csr_ensemble_body<P: PairTerm>(
    p: P,
    csr: CsrView<'_>,
    r: usize,
    theta: &[f64],
    s: &[f64],
    c: &[f64],
    rows: std::ops::Range<usize>,
    out: &mut [f64],
) {
    let out = &mut out[..rows.len() * r];
    out.fill(0.0);
    for (slot, i) in rows.enumerate() {
        let out_row = &mut out[slot * r..(slot + 1) * r];
        let ti = &theta[i * r..(i + 1) * r];
        let si = &s[i * r..(i + 1) * r];
        let ci = &c[i * r..(i + 1) * r];
        for &j in csr.row(i) {
            let j = j as usize;
            let tj = &theta[j * r..(j + 1) * r];
            let sj = &s[j * r..(j + 1) * r];
            let cj = &c[j * r..(j + 1) * r];
            for rep in 0..r {
                out_row[rep] += p.eval(tj[rep] - ti[rep], sj[rep], cj[rep], si[rep], ci[rep]);
            }
        }
    }
}

/// Ensemble twin of [`finalize_rows_body`]: each oscillator row's scale
/// applies to its `r` contiguous replica slots. Same per-element
/// arithmetic (`omega + scale · v`), hence bitwise identical.
#[inline(always)]
fn finalize_rows_ensemble_body(omega: f64, scale: &[f64], r: usize, out: &mut [f64]) {
    for (row, &sc) in scale.iter().enumerate() {
        for d in &mut out[row * r..(row + 1) * r] {
            *d = omega + sc * *d;
        }
    }
}

// ---------------------------------------------------------------------------
// Runtime SIMD dispatch
// ---------------------------------------------------------------------------
//
// The bodies above are plain scalar Rust; compiled for the x86-64 baseline
// they vectorize to SSE2 without FMA. Recompiling the same bodies with
// `#[target_feature(enable = "avx2,fma")]` lets LLVM emit 4-wide FMA code,
// roughly halving the split kernel's cost — worth a runtime dispatch,
// since the selection is a process-wide constant it cannot change results
// between threads or calls. (FMA contraction does change the low bits
// versus the non-FMA build; that machine dependence is part of the
// `SinCosSplit` accuracy policy and never applies to `Exact`.)

/// Finalize a chunk of raw coupling sums in place:
/// `out[slot] = omega + scale[slot] · out[slot]` (the noise-free fast
/// path; per-oscillator intrinsic noise takes the caller's scalar loop).
#[inline(always)]
fn finalize_rows_body(omega: f64, scale: &[f64], out: &mut [f64]) {
    for (d, &sc) in out.iter_mut().zip(scale) {
        *d = omega + sc * *d;
    }
}

#[cfg(target_arch = "x86_64")]
#[inline]
fn have_avx2_fma() -> bool {
    std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
}

/// Defines a `pub(crate)` front door for a scalar `*_body` kernel that
/// re-dispatches to an AVX2+FMA recompilation of the same body when the
/// CPU has the features. One definition per kernel — the dispatch policy
/// (feature set, detection, fallback) lives here once.
macro_rules! simd_dispatched {
    (
        $(#[$doc:meta])*
        fn $name:ident $(<$gen:ident: $bound:ident>)? ($($arg:ident: $ty:ty),* $(,)?) = $body:ident
    ) => {
        $(#[$doc])*
        // Ensemble kernels thread `r` through the shared signature shape.
        #[allow(clippy::too_many_arguments)]
        pub(crate) fn $name$(<$gen: $bound>)?($($arg: $ty),*) {
            #[cfg(target_arch = "x86_64")]
            {
                #[target_feature(enable = "avx2,fma")]
                #[allow(clippy::too_many_arguments)]
                unsafe fn avx2$(<$gen: $bound>)?($($arg: $ty),*) {
                    $body($($arg),*)
                }
                if have_avx2_fma() {
                    // SAFETY: the required CPU features were detected at
                    // runtime.
                    return unsafe { avx2($($arg),*) };
                }
            }
            $body($($arg),*)
        }
    };
}

simd_dispatched! {
    /// `sin`/`cos` array pass with runtime SIMD dispatch.
    fn sincos_pass(k: f64, xs: &[f64], s: &mut [f64], c: &mut [f64]) = sincos_pass_body
}

simd_dispatched! {
    /// Stencil row loop with runtime SIMD dispatch.
    fn split_rows_stencil<P: PairTerm>(
        p: P,
        stencil: &RingStencil,
        theta: &[f64],
        s: &[f64],
        c: &[f64],
        rows: std::ops::Range<usize>,
        out: &mut [f64],
    ) = split_rows_stencil_body
}

simd_dispatched! {
    /// CSR row loop with runtime SIMD dispatch.
    fn split_rows_csr<P: PairTerm>(
        p: P,
        csr: CsrView<'_>,
        theta: &[f64],
        s: &[f64],
        c: &[f64],
        rows: std::ops::Range<usize>,
        out: &mut [f64],
    ) = split_rows_csr_body
}

simd_dispatched! {
    /// Row finalization with runtime SIMD dispatch.
    fn finalize_rows(omega: f64, scale: &[f64], out: &mut [f64]) = finalize_rows_body
}

simd_dispatched! {
    /// Ensemble stencil row loop with runtime SIMD dispatch.
    fn split_rows_stencil_ensemble<P: PairTerm>(
        p: P,
        stencil: &RingStencil,
        r: usize,
        theta: &[f64],
        s: &[f64],
        c: &[f64],
        rows: std::ops::Range<usize>,
        out: &mut [f64],
    ) = split_rows_stencil_ensemble_body
}

simd_dispatched! {
    /// Ensemble CSR row loop with runtime SIMD dispatch.
    fn split_rows_csr_ensemble<P: PairTerm>(
        p: P,
        csr: CsrView<'_>,
        r: usize,
        theta: &[f64],
        s: &[f64],
        c: &[f64],
        rows: std::ops::Range<usize>,
        out: &mut [f64],
    ) = split_rows_csr_ensemble_body
}

simd_dispatched! {
    /// Ensemble row finalization with runtime SIMD dispatch.
    fn finalize_rows_ensemble(omega: f64, scale: &[f64], r: usize, out: &mut [f64]) = finalize_rows_ensemble_body
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sincos_pass_matches_libm_within_policy() {
        // Dense sweep over several revolutions plus the desync wavenumber.
        let xs: Vec<f64> = (0..20_001).map(|i| -50.0 + i as f64 * 0.005).collect();
        let mut s = vec![0.0; xs.len()];
        let mut c = vec![0.0; xs.len()];
        for k in [1.0, 1.5 * std::f64::consts::PI / 3.0, 7.3] {
            sincos_pass(k, &xs, &mut s, &mut c);
            let mut max_err = 0.0f64;
            for (j, &x) in xs.iter().enumerate() {
                let (es, ec) = (k * x).sin_cos();
                max_err = max_err.max((s[j] - es).abs()).max((c[j] - ec).abs());
            }
            assert!(max_err < 1e-12, "k = {k}: max err {max_err:e}");
        }
    }

    #[test]
    fn sincos_pass_large_arguments_fall_back_to_libm() {
        let xs = [1e7, -3.2e8, 5.5e9, 2.0, f64::NAN];
        let mut s = [0.0; 5];
        let mut c = [0.0; 5];
        sincos_pass(1.0, &xs, &mut s, &mut c);
        // Beyond ARG_LIMIT: bitwise libm values.
        for j in 0..3 {
            assert_eq!(s[j], xs[j].sin(), "elem {j}");
            assert_eq!(c[j], xs[j].cos(), "elem {j}");
        }
        // Small argument in the same batch stays on the polynomial path.
        assert!((s[3] - xs[3].sin()).abs() < 1e-13);
        assert!((c[3] - xs[3].cos()).abs() < 1e-13);
        assert!(s[4].is_nan() && c[4].is_nan());
    }

    #[test]
    fn sincos_pass_chunk_invariant() {
        let xs: Vec<f64> = (0..777).map(|i| (i as f64 * 0.713).sin() * 40.0).collect();
        let k = 2.31;
        let mut s1 = vec![0.0; 777];
        let mut c1 = vec![0.0; 777];
        sincos_pass(k, &xs, &mut s1, &mut c1);
        // Same pass, split into uneven chunks.
        let mut s2 = vec![0.0; 777];
        let mut c2 = vec![0.0; 777];
        for (lo, hi) in [(0usize, 130usize), (130, 131), (131, 700), (700, 777)] {
            sincos_pass(k, &xs[lo..hi], &mut s2[lo..hi], &mut c2[lo..hi]);
        }
        assert_eq!(s1, s2);
        assert_eq!(c1, c2);
    }

    #[test]
    fn kernel_names_round_trip() {
        for k in [RhsKernel::Exact, RhsKernel::SinCosSplit] {
            assert_eq!(RhsKernel::from_name(k.name()), Some(k));
        }
        assert_eq!(RhsKernel::from_name("split"), Some(RhsKernel::SinCosSplit));
        assert_eq!(RhsKernel::from_name("quux"), None);
        assert_eq!(RhsKernel::default(), RhsKernel::Exact);
    }

    #[test]
    fn desync_pair_matches_potential() {
        let sigma = 2.5;
        let k = 1.5 * std::f64::consts::PI / sigma;
        let p = DesyncPair { sigma };
        let pot = crate::potential::Potential::desync(sigma);
        for (ti, tj) in [(0.1, 0.7), (-3.0, 2.0), (5.0, 5.0), (0.0, -9.0)] {
            let (si, ci) = (k * ti).sin_cos();
            let (sj, cj) = (k * tj).sin_cos();
            let via_pair = p.eval(tj - ti, sj, cj, si, ci);
            let direct = pot.value(tj - ti);
            assert!(
                (via_pair - direct).abs() < 1e-12,
                "({ti}, {tj}): {via_pair} vs {direct}"
            );
        }
    }

    #[test]
    fn split_scratch_grows_and_splits() {
        let mut sc = SplitScratch::default();
        let (s, c) = sc.halves(10);
        assert_eq!(s.len(), 10);
        assert_eq!(c.len(), 10);
        s[9] = 1.0;
        c[0] = 2.0;
        let (s, c) = sc.halves(4);
        assert_eq!(s.len(), 4);
        assert_eq!(c.len(), 4);
    }
}
