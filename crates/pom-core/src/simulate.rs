//! Simulation driver: integrate a [`Pom`] and expose the paper's
//! observables on the result.

use pom_ode::dde::{DdeRk4, InitialHistory};
use pom_ode::{Dopri5, FixedStepSolver, OdeError, Rk4, StepObserver, Trajectory, Workspace};

use crate::initial::InitialCondition;
use crate::model::Pom;
use crate::observables::{
    adjacent_differences, lagger_normalized, mean_abs_adjacent_difference, order_parameter,
    phase_spread,
};

/// Count one completed model run; no-op when instrumentation is off.
/// The underlying solver already flushed its step/eval totals.
fn count_simulation() {
    if !pom_obs::enabled() {
        return;
    }
    static C: std::sync::OnceLock<std::sync::Arc<pom_obs::Counter>> = std::sync::OnceLock::new();
    C.get_or_init(|| {
        pom_obs::registry().counter(
            "pom_core_simulations_total",
            "Completed model simulations (recording and observed paths).",
        )
    })
    .inc();
}

/// Reusable scratch memory for model runs.
///
/// Wraps the integrator [`Workspace`] so one allocation pool serves every
/// solver path ([`SolverChoice::Dopri5`], [`SolverChoice::FixedRk4`], the
/// DDE driver). Hold one per worker thread and pass it to
/// [`Pom::simulate_with_ws`] / [`Pom::simulate_many`]; reuse never changes
/// results (trajectories are bitwise identical to the fresh-workspace
/// path).
#[derive(Debug, Clone, Default)]
pub struct SimWorkspace {
    ode: Workspace,
}

impl SimWorkspace {
    /// An empty workspace; buffers are acquired lazily on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Access the underlying integrator workspace.
    pub fn ode(&mut self) -> &mut Workspace {
        &mut self.ode
    }
}

/// Integrator selection for a model run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum SolverChoice {
    /// Pick automatically: Dormand–Prince 5(4) without interaction delays,
    /// fixed-step DDE-RK4 with them (the paper's MATLAB tool uses ode45;
    /// delays force the method-of-steps path).
    #[default]
    Auto,
    /// Adaptive Dormand–Prince with explicit tolerances.
    Dopri5 {
        /// Relative tolerance.
        rtol: f64,
        /// Absolute tolerance.
        atol: f64,
    },
    /// Fixed-step classical RK4 (also used for ablation benches).
    FixedRk4 {
        /// Step size in seconds.
        h: f64,
    },
}

/// Options for [`Pom::simulate_with`].
#[derive(Debug, Clone, PartialEq)]
pub struct SimOptions {
    /// End of the integration span (starts at 0).
    pub t_end: f64,
    /// Number of uniformly spaced output samples (≥ 2).
    pub n_samples: usize,
    /// Integrator selection.
    pub solver: SolverChoice,
}

impl SimOptions {
    /// Default options for a span: 400 output samples, automatic solver.
    pub fn new(t_end: f64) -> Self {
        Self {
            t_end,
            n_samples: 400,
            solver: SolverChoice::Auto,
        }
    }

    /// Set the number of output samples.
    pub fn samples(mut self, n: usize) -> Self {
        self.n_samples = n.max(2);
        self
    }

    /// Set the solver.
    pub fn solver(mut self, solver: SolverChoice) -> Self {
        self.solver = solver;
        self
    }
}

/// Result of a model run: the phase trajectory on a uniform grid plus the
/// model's natural frequency, with the paper's observables as methods.
#[derive(Debug, Clone)]
pub struct PomRun {
    omega: f64,
    trajectory: Trajectory,
}

impl PomRun {
    /// The sampled phase trajectory (state dimension = N oscillators).
    pub fn trajectory(&self) -> &Trajectory {
        &self.trajectory
    }

    /// Natural angular frequency `ω` of the noise-free oscillator.
    pub fn omega(&self) -> f64 {
        self.omega
    }

    /// Sampled time grid.
    pub fn times(&self) -> &[f64] {
        self.trajectory.times()
    }

    /// Kuramoto order parameter `r(t)` over the run.
    pub fn order_parameter_series(&self) -> Vec<(f64, f64)> {
        self.trajectory
            .iter()
            .map(|(t, phases)| (t, order_parameter(phases).0))
            .collect()
    }

    /// `r` at the final sample.
    pub fn final_order_parameter(&self) -> f64 {
        order_parameter(self.trajectory.last().expect("non-empty run")).0
    }

    /// Phase spread `max − min` over time.
    pub fn phase_spread_series(&self) -> Vec<(f64, f64)> {
        self.trajectory
            .iter()
            .map(|(t, phases)| (t, phase_spread(phases)))
            .collect()
    }

    /// Phase spread at the final sample.
    pub fn final_phase_spread(&self) -> f64 {
        phase_spread(self.trajectory.last().expect("non-empty run"))
    }

    /// The paper's standard view at sample `k`: `θ_i − ωt`, lagger at 0.
    pub fn normalized_snapshot(&self, k: usize) -> Vec<f64> {
        lagger_normalized(
            self.trajectory.state(k),
            self.omega,
            self.trajectory.time(k),
        )
    }

    /// Lagger-normalized phases at the last sample.
    pub fn final_normalized(&self) -> Vec<f64> {
        self.normalized_snapshot(self.trajectory.len() - 1)
    }

    /// Adjacent phase differences at the final sample (wavefront slope).
    pub fn final_adjacent_differences(&self) -> Vec<f64> {
        adjacent_differences(self.trajectory.last().expect("non-empty run"))
    }

    /// Mean `|adjacent phase difference|` at the final sample — the
    /// quantity the §5.2.2 sweep compares against `2σ/3` (0 for a single
    /// oscillator).
    pub fn mean_abs_adjacent_gap(&self) -> f64 {
        mean_abs_adjacent_difference(self.trajectory.last().expect("non-empty run"))
    }

    /// Time series of one oscillator's lagger-normalized phase.
    pub fn normalized_component_series(&self, i: usize) -> Vec<(f64, f64)> {
        (0..self.trajectory.len())
            .map(|k| (self.trajectory.time(k), self.normalized_snapshot(k)[i]))
            .collect()
    }
}

/// Result of an *observed* model run: O(N) summary data instead of a
/// trajectory — the natural frequency, step counters, and the final
/// state, with the final-sample observables as methods. Everything
/// time-resolved lives in whatever [`StepObserver`] the caller attached.
#[derive(Debug, Clone)]
pub struct SimSummary {
    omega: f64,
    t_end: f64,
    n_steps: usize,
    final_state: Vec<f64>,
}

impl SimSummary {
    /// Assemble a summary from externally held parts — for consumers that
    /// already ran a recording path and want the same final-sample
    /// observable methods on it (`n_steps` then counts whatever the
    /// caller's driver counted, e.g. recorded samples).
    pub fn from_final(omega: f64, t_end: f64, n_steps: usize, final_state: Vec<f64>) -> Self {
        Self {
            omega,
            t_end,
            n_steps,
            final_state,
        }
    }

    /// Natural angular frequency `ω` of the noise-free oscillator.
    pub fn omega(&self) -> f64 {
        self.omega
    }

    /// Time reached (== the requested span end).
    pub fn t_end(&self) -> f64 {
        self.t_end
    }

    /// Accepted integrator steps taken (== observer `observe_step`
    /// callbacks delivered).
    pub fn n_steps(&self) -> usize {
        self.n_steps
    }

    /// Final phases `θ(t_end)`.
    pub fn final_state(&self) -> &[f64] {
        &self.final_state
    }

    /// Kuramoto order parameter `r` at `t_end`.
    pub fn final_order_parameter(&self) -> f64 {
        order_parameter(&self.final_state).0
    }

    /// Phase spread `max − min` at `t_end`.
    pub fn final_phase_spread(&self) -> f64 {
        phase_spread(&self.final_state)
    }

    /// Adjacent phase differences at `t_end` (wavefront slope).
    pub fn final_adjacent_differences(&self) -> Vec<f64> {
        adjacent_differences(&self.final_state)
    }

    /// Mean `|adjacent phase difference|` at `t_end` (0 for a single
    /// oscillator) — matches [`PomRun::mean_abs_adjacent_gap`].
    pub fn mean_abs_adjacent_gap(&self) -> f64 {
        mean_abs_adjacent_difference(&self.final_state)
    }

    /// Lagger-normalized phases at `t_end` (the paper's standard view).
    pub fn final_normalized(&self) -> Vec<f64> {
        lagger_normalized(&self.final_state, self.omega, self.t_end)
    }
}

impl Pom {
    /// Integrate the model from an initial condition to `t_end` with
    /// default options (automatic solver, 400 samples).
    pub fn simulate(&self, init: InitialCondition, t_end: f64) -> Result<PomRun, OdeError> {
        self.simulate_with(init, &SimOptions::new(t_end))
    }

    /// Integrate with explicit [`SimOptions`].
    ///
    /// Allocates fresh scratch; loops over many runs should hold a
    /// [`SimWorkspace`] and call [`Pom::simulate_with_ws`] instead.
    pub fn simulate_with(
        &self,
        init: InitialCondition,
        opts: &SimOptions,
    ) -> Result<PomRun, OdeError> {
        self.simulate_with_ws(init, opts, &mut SimWorkspace::new())
    }

    /// Integrate an ensemble of initial conditions under the same options,
    /// sharing one workspace across all members — the batched entry point
    /// the sweep engine builds on. Results are identical to sequential
    /// [`Pom::simulate_with`] calls; the first error aborts the batch.
    pub fn simulate_many(
        &self,
        inits: &[InitialCondition],
        opts: &SimOptions,
    ) -> Result<Vec<PomRun>, OdeError> {
        let mut ws = SimWorkspace::new();
        inits
            .iter()
            .map(|init| self.simulate_with_ws(init.clone(), opts, &mut ws))
            .collect()
    }

    /// Integrate with explicit [`SimOptions`] and caller-provided scratch
    /// memory — the allocation-lean fast path (monomorphized right-hand
    /// side, zero allocation inside the step loop).
    pub fn simulate_with_ws(
        &self,
        init: InitialCondition,
        opts: &SimOptions,
        ws: &mut SimWorkspace,
    ) -> Result<PomRun, OdeError> {
        let y0 = init.phases(self.n());
        let omega = self.omega();
        let (solver, h_cap) = self.resolve_solver(opts);

        let trajectory = match solver {
            SolverChoice::Dopri5 { rtol, atol } => {
                let mut solver = Dopri5::new().rtol(rtol).atol(atol);
                if let Some(h) = h_cap {
                    solver = solver.h_max(h);
                }
                let (sol, _) = solver.integrate_with(self, 0.0, &y0, opts.t_end, ws.ode())?;
                sol.resample(opts.n_samples)?
            }
            SolverChoice::FixedRk4 { h } => {
                if self.has_delays() {
                    let n_steps = (opts.t_end / h).ceil() as usize;
                    let every = (n_steps / opts.n_samples).max(1);
                    let (traj, _) = DdeRk4::new(h)?.record_every(every).integrate_with(
                        self,
                        0.0,
                        InitialHistory::Constant(y0),
                        opts.t_end,
                        ws.ode(),
                    )?;
                    traj
                } else {
                    let n_steps = (opts.t_end / h).ceil() as usize;
                    let every = (n_steps / opts.n_samples).max(1);
                    FixedStepSolver::new(Rk4, h)?
                        .record_every(every)
                        .integrate_with(self, 0.0, &y0, opts.t_end, ws.ode())?
                }
            }
            SolverChoice::Auto => unreachable!("resolved above"),
        };

        count_simulation();
        Ok(PomRun { omega, trajectory })
    }

    /// Resolve [`SolverChoice::Auto`] and the local-noise step cap shared
    /// by the recording and observed drivers (and, `pub(crate)`, by the
    /// ensemble driver's lockstep-vs-sequential policy).
    pub(crate) fn resolve_solver(&self, opts: &SimOptions) -> (SolverChoice, Option<f64>) {
        let solver = match opts.solver {
            SolverChoice::Auto => {
                if self.has_delays() {
                    // Resolve the cycle and the delay comfortably.
                    let h = (self.params().cycle_time() / 100.0)
                        .min(self.max_delay().max(f64::EPSILON) / 2.0)
                        .min(opts.t_end / 10.0);
                    SolverChoice::FixedRk4 { h }
                } else {
                    SolverChoice::Dopri5 {
                        rtol: 1e-8,
                        atol: 1e-10,
                    }
                }
            }
            other => other,
        };

        // Local noise makes the RHS discontinuous in t (one-off delay
        // windows, daemon bursts). An adaptive solver coasting on a smooth
        // stretch can grow its step far beyond a noise window and jump
        // clean over it (all stage times landing outside), so cap the
        // step at a fraction of the cycle whenever local noise is active.
        let h_cap = if self.has_local_noise() {
            Some(self.params().cycle_time() / 10.0)
        } else {
            None
        };
        (solver, h_cap)
    }

    /// Integrate while streaming every accepted step to `obs`, returning
    /// an O(N) [`SimSummary`] — **no trajectory is allocated**, which is
    /// what makes million-step runs of 10⁵ oscillators memory-feasible.
    ///
    /// Solver selection and step control are exactly those of
    /// [`Pom::simulate_with`] (same [`SolverChoice`] resolution, same
    /// local-noise step cap): the integration takes the identical step
    /// sequence and the returned final state is the integrator's raw
    /// `y(t_end)` — bitwise identical to the fixed-step/DDE recording
    /// paths' last sample and to the Dopri5 path's
    /// [`pom_ode::DenseSolution::y_end`] (proptested). Note that a
    /// *resampled* Dopri5 trajectory's last sample (what
    /// [`PomRun::trajectory`] holds) evaluates the dense interpolant at
    /// `t_end` instead and can differ from `y_end` in the last ULPs.
    /// `opts.n_samples` is ignored
    /// — the observer sees *every* accepted step, and callers wanting
    /// decimation wrap their observer in [`pom_ode::ObserveEvery`]. With
    /// interaction delays the method-of-steps history is pruned to the
    /// model's maximum delay window, so memory stays O(N · τ_max/h)
    /// instead of O(N · steps).
    ///
    /// Allocates fresh scratch; loops should hold a [`SimWorkspace`] and
    /// call [`Pom::simulate_observed_ws`].
    ///
    /// ```
    /// use pom_core::{InitialCondition, NoObserver, PomBuilder, Potential, SimOptions};
    /// use pom_topology::Topology;
    ///
    /// let model = PomBuilder::new(16)
    ///     .topology(Topology::ring(16, &[-1, 1]))
    ///     .potential(Potential::Tanh)
    ///     .compute_time(1.0)
    ///     .comm_time(0.1)
    ///     .coupling(8.0)
    ///     .build()
    ///     .unwrap();
    /// // No trajectory is allocated — only the O(N) summary comes back.
    /// let init = InitialCondition::RandomSpread { amplitude: 1.0, seed: 3 };
    /// let summary = model
    ///     .simulate_observed(init, &SimOptions::new(120.0), &mut NoObserver)
    ///     .unwrap();
    /// assert!(summary.final_order_parameter() > 0.999); // resynchronized
    /// assert_eq!(summary.final_state().len(), 16);
    /// ```
    pub fn simulate_observed<O: StepObserver>(
        &self,
        init: InitialCondition,
        opts: &SimOptions,
        obs: &mut O,
    ) -> Result<SimSummary, OdeError> {
        self.simulate_observed_ws(init, opts, obs, &mut SimWorkspace::new())
    }

    /// [`Pom::simulate_observed`] with caller-provided scratch memory —
    /// the allocation-lean fast path (the step loop allocates nothing;
    /// the workspace and the O(N) summary are the only owned memory).
    pub fn simulate_observed_ws<O: StepObserver>(
        &self,
        init: InitialCondition,
        opts: &SimOptions,
        obs: &mut O,
        ws: &mut SimWorkspace,
    ) -> Result<SimSummary, OdeError> {
        let y0 = init.phases(self.n());
        let omega = self.omega();
        let (solver, h_cap) = self.resolve_solver(opts);

        let (t_end, n_steps, final_state) = match solver {
            SolverChoice::Dopri5 { rtol, atol } => {
                let mut solver = Dopri5::new().rtol(rtol).atol(atol);
                if let Some(h) = h_cap {
                    solver = solver.h_max(h);
                }
                let (sum, _) =
                    solver.integrate_observed(self, 0.0, &y0, opts.t_end, ws.ode(), obs)?;
                (sum.t_end, sum.n_steps, sum.y_end)
            }
            SolverChoice::FixedRk4 { h } => {
                if self.has_delays() {
                    let sum = DdeRk4::new(h)?.integrate_observed(
                        self,
                        0.0,
                        InitialHistory::Constant(y0),
                        opts.t_end,
                        self.max_delay(),
                        ws.ode(),
                        obs,
                    )?;
                    (sum.t_end, sum.n_steps, sum.y_end)
                } else {
                    let sum = FixedStepSolver::new(Rk4, h)?.integrate_observed(
                        self,
                        0.0,
                        &y0,
                        opts.t_end,
                        ws.ode(),
                        obs,
                    )?;
                    (sum.t_end, sum.n_steps, sum.y_end)
                }
            }
            SolverChoice::Auto => unreachable!("resolved above"),
        };

        count_simulation();
        Ok(SimSummary {
            omega,
            t_end,
            n_steps,
            final_state,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::PomBuilder;
    use crate::potential::Potential;
    use pom_noise::ConstantDelay;
    use pom_topology::Topology;

    fn scalable_model(n: usize) -> Pom {
        PomBuilder::new(n)
            .topology(Topology::ring(n, &[-1, 1]))
            .potential(Potential::Tanh)
            .compute_time(1.0)
            .comm_time(0.0)
            .coupling(8.0) // strong coupling → quick resync in tests
            .build()
            .unwrap()
    }

    fn bottlenecked_model(topology: Topology, sigma: f64) -> Pom {
        let n = topology.n();
        PomBuilder::new(n)
            .topology(topology)
            .potential(Potential::desync(sigma))
            .compute_time(1.0)
            .comm_time(0.0)
            .coupling(8.0)
            .build()
            .unwrap()
    }

    #[test]
    fn scalable_run_resynchronizes() {
        let run = scalable_model(16)
            .simulate(
                InitialCondition::RandomSpread {
                    amplitude: 1.0,
                    seed: 3,
                },
                120.0,
            )
            .unwrap();
        assert!(
            run.final_order_parameter() > 0.999,
            "r = {}",
            run.final_order_parameter()
        );
        assert!(run.final_phase_spread() < 1e-2);
        // Order parameter increased from start to end.
        let series = run.order_parameter_series();
        assert!(series.first().unwrap().1 < series.last().unwrap().1);
    }

    #[test]
    fn bottlenecked_chain_settles_at_exactly_two_thirds_sigma() {
        // On an open chain the stable broken-symmetry state has every
        // adjacent difference at a zero of V, and stability selects the
        // first zero +-2sigma/3 (the V'=0 point sigma/3 is only marginal).
        let sigma = 1.5;
        let run = bottlenecked_model(Topology::chain(12, &[-1, 1]), sigma)
            .simulate(
                InitialCondition::RandomSpread {
                    amplitude: 0.1,
                    seed: 5,
                },
                400.0,
            )
            .unwrap();
        let diffs = run.final_adjacent_differences();
        let expect = 2.0 * sigma / 3.0;
        for (i, d) in diffs.iter().enumerate() {
            assert!(
                (d.abs() - expect).abs() < 0.02,
                "pair {i}: |delta| = {} (want ~{expect})",
                d.abs()
            );
        }
        assert!(
            run.final_phase_spread() > expect,
            "a wavefront has macroscopic spread"
        );
    }

    #[test]
    fn bottlenecked_ring_desynchronizes_but_cannot_wind_uniformly() {
        // On a ring a uniform 2sigma/3 gradient cannot close around the
        // loop (the wrap pair saturates), so we assert desynchronization
        // without pinning the exact pattern: macroscopic spread, adjacent
        // gaps pushed away from lockstep toward the O(sigma) scale.
        let sigma = 1.5;
        let run = bottlenecked_model(Topology::ring(12, &[-1, 1]), sigma)
            .simulate(
                InitialCondition::RandomSpread {
                    amplitude: 0.1,
                    seed: 5,
                },
                300.0,
            )
            .unwrap();
        let diffs = run.final_adjacent_differences();
        let mean_abs = diffs.iter().map(|d| d.abs()).sum::<f64>() / diffs.len() as f64;
        assert!(
            mean_abs > sigma / 3.0,
            "mean |delta| = {mean_abs} stayed near lockstep"
        );
        assert!(
            run.final_phase_spread() > sigma,
            "spread = {}",
            run.final_phase_spread()
        );
    }

    #[test]
    fn synchronized_start_stays_synchronized_for_scalable() {
        let run = scalable_model(8)
            .simulate(InitialCondition::Synchronized, 20.0)
            .unwrap();
        assert!(run.final_phase_spread() < 1e-9);
        assert!((run.final_order_parameter() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn normalized_snapshot_has_zero_lagger() {
        let run = scalable_model(8)
            .simulate(
                InitialCondition::RandomSpread {
                    amplitude: 0.5,
                    seed: 1,
                },
                5.0,
            )
            .unwrap();
        for k in [0, run.trajectory().len() - 1] {
            let norm = run.normalized_snapshot(k);
            let min = norm.iter().cloned().fold(f64::INFINITY, f64::min);
            assert!(min.abs() < 1e-12);
        }
    }

    #[test]
    fn sample_count_respected() {
        let run = scalable_model(4)
            .simulate_with(
                InitialCondition::Synchronized,
                &SimOptions::new(10.0).samples(37),
            )
            .unwrap();
        assert_eq!(run.trajectory().len(), 37);
        assert!((run.times().last().unwrap() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn fixed_rk4_agrees_with_dopri5() {
        let model = scalable_model(6);
        let init = InitialCondition::RandomSpread {
            amplitude: 0.8,
            seed: 11,
        };
        let a = model
            .simulate_with(
                init.clone(),
                &SimOptions::new(30.0).solver(SolverChoice::Dopri5 {
                    rtol: 1e-10,
                    atol: 1e-10,
                }),
            )
            .unwrap();
        let b = model
            .simulate_with(
                init,
                &SimOptions::new(30.0).solver(SolverChoice::FixedRk4 { h: 0.005 }),
            )
            .unwrap();
        let fa = a.trajectory().last().unwrap();
        let fb = b.trajectory().last().unwrap();
        for i in 0..6 {
            assert!(
                (fa[i] - fb[i]).abs() < 1e-6,
                "osc {i}: {} vs {}",
                fa[i],
                fb[i]
            );
        }
    }

    #[test]
    fn auto_uses_dde_when_delays_present() {
        let model = PomBuilder::new(4)
            .topology(Topology::ring(4, &[-1, 1]))
            .potential(Potential::Tanh)
            .coupling(4.0)
            .interaction_noise(ConstantDelay::new(0.2))
            .build()
            .unwrap();
        // Just verify the run completes and resynchronizes despite delay.
        let run = model
            .simulate(
                InitialCondition::RandomSpread {
                    amplitude: 0.3,
                    seed: 2,
                },
                80.0,
            )
            .unwrap();
        assert!(run.final_order_parameter() > 0.99);
    }

    #[test]
    fn normalized_component_series_tracks_lag() {
        let run = scalable_model(8)
            .simulate(InitialCondition::Synchronized, 5.0)
            .unwrap();
        let series = run.normalized_component_series(3);
        assert_eq!(series.len(), run.trajectory().len());
        // Synchronized, noise-free: everyone *is* the lagger (all zero).
        for (_, v) in series {
            assert!(v.abs() < 1e-9);
        }
    }
}
