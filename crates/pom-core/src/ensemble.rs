//! Natively batched lockstep ensembles of [`Pom`] models.
//!
//! A [`PomEnsemble`] advances R replicas of one scenario — identical
//! structure (size, topology, potential, kernel, parameters), differing
//! only in their noise realizations — as a single interleaved
//! `n·R`-dimensional system (see [`pom_ode::ensemble`] for the layout).
//! Unlike the gather/scatter reference adapter
//! ([`pom_ode::EnsembleSystem`]), the RHS here is evaluated *batched*:
//!
//! * the polynomial sin/cos array pass runs once over the `n·R`
//!   interleaved state (same per-element values — the pass is
//!   position-independent);
//! * the ring-stencil walk visits each oscillator row once, accumulating
//!   all R replicas from contiguous `r`-wide windows — one pass over
//!   memory instead of one per offset, which is where the ensemble
//!   speedup comes from (the single-replica walk re-streams the whole
//!   `θ/sin/cos/out` working set per stencil offset);
//! * `ChunkPool` row chunks carry R replicas each, so fork–join overhead
//!   amortizes across the batch.
//!
//! ## Bitwise contract
//!
//! `simulate_observed_ws` is bitwise identical to R independent
//! [`Pom::simulate_observed_ws`] calls — per replica: same final state,
//! same observer callback sequence. The batched kernels preserve each
//! component's accumulation order (see `kernel.rs`), fixed-step RK stage
//! arithmetic is elementwise, and the per-replica observer fan-out
//! de-interleaves states before the probes see them. The property suite
//! (`tests/ensemble_bitwise.rs`) pins this per kernel, per solver, per
//! thread count.
//!
//! Adaptive solvers ([`SolverChoice::Dopri5`], and `Auto` resolving to
//! it) cannot be lockstep-batched without coupling replicas through the
//! shared error norm; the driver transparently falls back to sequential
//! per-replica integration there (trivially bitwise — it *is* the
//! independent path).

use std::f64::consts::TAU;
use std::sync::Mutex;

use pom_kernels::par::DisjointSliceMut;
use pom_ode::dde::{DdeRk4, DdeSystem, InitialHistory, PhaseHistory};
use pom_ode::{
    EnsembleLayout, EnsembleObserver, FixedStepSolver, OdeError, OdeSystem, Rk4, StepObserver,
};

use crate::initial::InitialCondition;
use crate::kernel::{self, DesyncPair, RhsKernel, SinPair, SplitScratch};
use crate::model::{Pom, MIN_PAR_ROWS};
use crate::potential::Potential;
use crate::simulate::{SimOptions, SimSummary, SimWorkspace, SolverChoice};

/// Count one ensemble run and its replica total; no-op when
/// instrumentation is off.
fn count_ensemble(replicas: usize) {
    if !pom_obs::enabled() {
        return;
    }
    use std::sync::{Arc, OnceLock};
    static RUNS: OnceLock<Arc<pom_obs::Counter>> = OnceLock::new();
    static REPS: OnceLock<Arc<pom_obs::Counter>> = OnceLock::new();
    RUNS.get_or_init(|| {
        pom_obs::registry().counter(
            "pom_core_ensemble_runs_total",
            "Batched ensemble simulations started.",
        )
    })
    .inc();
    REPS.get_or_init(|| {
        pom_obs::registry().counter(
            "pom_core_ensemble_replicas_total",
            "Replicas integrated across all ensemble simulations.",
        )
    })
    .add(replicas as u64);
}

/// R replicas of one scenario, integrated in lockstep as a single
/// interleaved system. Construct with [`PomEnsemble::new`]; run with
/// [`PomEnsemble::simulate_observed_ws`].
pub struct PomEnsemble {
    members: Vec<Pom>,
    /// Batched sin/cos scratch (`2·n·R`), separate from the members' own
    /// single-run scratch.
    split_scratch: Mutex<SplitScratch>,
    /// Every member's delay field has the same fingerprint (same modelled
    /// machine): the DDE path then evaluates `τ_ij(t)` and the history
    /// lookup once per pair instead of once per replica.
    shared_delays: bool,
}

impl std::fmt::Debug for PomEnsemble {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PomEnsemble")
            .field("n", &self.n())
            .field("replicas", &self.replicas())
            .field("kernel", &self.members[0].kernel())
            .finish_non_exhaustive()
    }
}

impl PomEnsemble {
    /// Batch `members` into one lockstep ensemble.
    ///
    /// Every member must share the structural configuration — size,
    /// scalar parameters, potential, kernel, coupling normalization and
    /// the presence/absence of delays and local noise. (They are expected
    /// to differ only in noise *realizations*, i.e. seeds.) Panics on a
    /// mismatch: members of one ensemble come from one scenario by
    /// construction, so a mismatch is a caller bug, not input data.
    pub fn new(members: Vec<Pom>) -> Self {
        assert!(!members.is_empty(), "ensemble needs at least one member");
        let m0 = &members[0];
        for (rep, m) in members.iter().enumerate().skip(1) {
            assert_eq!(m.n(), m0.n(), "replica {rep}: oscillator count differs");
            assert_eq!(
                m.params(),
                m0.params(),
                "replica {rep}: scalar parameters differ"
            );
            assert_eq!(
                m.potential(),
                m0.potential(),
                "replica {rep}: potential differs"
            );
            assert_eq!(m.kernel(), m0.kernel(), "replica {rep}: kernel differs");
            assert_eq!(
                m.coupling_cache, m0.coupling_cache,
                "replica {rep}: coupling normalization differs"
            );
            assert_eq!(
                m.has_delays(),
                m0.has_delays(),
                "replica {rep}: delay-path presence differs"
            );
            assert_eq!(
                m.has_local_noise(),
                m0.has_local_noise(),
                "replica {rep}: local-noise presence differs"
            );
        }
        let shared_delays = match m0.interaction_noise.fingerprint() {
            Some(fp) => members
                .iter()
                .all(|m| m.interaction_noise.fingerprint() == Some(fp)),
            None => false,
        };
        Self {
            members,
            split_scratch: Mutex::new(SplitScratch::default()),
            shared_delays,
        }
    }

    /// Oscillator count `n` (per replica).
    pub fn n(&self) -> usize {
        self.members[0].n()
    }

    /// Replica count `R`.
    pub fn replicas(&self) -> usize {
        self.members.len()
    }

    /// The interleaving layout (`n × R`).
    pub fn layout(&self) -> EnsembleLayout {
        EnsembleLayout::new(self.n(), self.replicas())
    }

    /// The member models, in replica order.
    pub fn members(&self) -> &[Pom] {
        &self.members
    }

    /// `true` if the ensemble runs on the delay-equation path.
    pub fn has_delays(&self) -> bool {
        self.members[0].has_delays()
    }

    /// Run the batched chunk loop over oscillator rows: each chunk covers
    /// `rows.len() · R` contiguous interleaved elements. Chunk boundaries
    /// cannot change results (disjoint writes, no cross-row arithmetic),
    /// exactly as in the single-replica model.
    #[inline]
    fn for_row_chunks(&self, dtheta: &mut [f64], rows: impl Fn(usize, &mut [f64]) + Sync) {
        let n = self.n();
        let r = self.replicas();
        match &self.members[0].pool {
            Some(pool) if n >= MIN_PAR_ROWS => {
                let shared = DisjointSliceMut::new(&mut dtheta[..n * r]);
                pool.run(n, &|_slot, range| {
                    // SAFETY: `ChunkPool::run` hands each slot a disjoint
                    // row range; scaling by `r` keeps element ranges
                    // disjoint.
                    let chunk = unsafe { shared.range_mut(range.start * r..range.end * r) };
                    rows(range.start, chunk);
                });
            }
            _ => rows(0, &mut dtheta[..n * r]),
        }
    }

    /// Batched `Exact` row loop: one CSR scan per row feeds all R
    /// replicas (neighbor-middle / replica-inner, ascending-neighbor per
    /// component — the single-replica accumulation order).
    fn exact_rows(&self, t: f64, theta: &[f64], dtheta: &mut [f64], v: impl Fn(f64) -> f64 + Sync) {
        let m0 = &self.members[0];
        let r = self.replicas();
        let csr = m0.topology.csr();
        let noise_free: Vec<bool> = self
            .members
            .iter()
            .map(|m| m.local_noise.is_null())
            .collect();
        let omega = TAU / m0.params.cycle_time().max(m0.min_cycle);
        let members = &self.members;
        self.for_row_chunks(dtheta, |start, out| {
            for slot in 0..out.len() / r {
                let i = start + slot;
                let out_row = &mut out[slot * r..(slot + 1) * r];
                out_row.fill(0.0);
                let ti = &theta[i * r..(i + 1) * r];
                for &j in csr.row(i) {
                    let j = j as usize;
                    let tj = &theta[j * r..(j + 1) * r];
                    for rep in 0..r {
                        out_row[rep] += v(tj[rep] - ti[rep]);
                    }
                }
                for (rep, d) in out_row.iter_mut().enumerate() {
                    let intrinsic = if noise_free[rep] {
                        omega
                    } else {
                        members[rep].intrinsic(i, t)
                    };
                    *d = intrinsic + m0.coupling_cache[i] * *d;
                }
            }
        });
    }

    /// Batched split-kernel row loop: one sin/cos pass over the `n·R`
    /// interleaved state, then the batched stencil/CSR accumulation and
    /// per-replica intrinsic finalization.
    fn split_rows<P: kernel::PairTerm>(
        &self,
        p: P,
        k: f64,
        t: f64,
        theta: &[f64],
        dtheta: &mut [f64],
    ) {
        let m0 = &self.members[0];
        let n = self.n();
        let r = self.replicas();
        let nr = n * r;
        let mut guard = self.split_scratch.lock().expect("ensemble split scratch");
        let (s, c) = guard.halves(nr);

        match &m0.pool {
            Some(pool) if n >= MIN_PAR_ROWS => {
                let s_shared = DisjointSliceMut::new(s);
                let c_shared = DisjointSliceMut::new(c);
                pool.run(n, &|_slot, range| {
                    let er = range.start * r..range.end * r;
                    // SAFETY: disjoint row ranges per slot, scaled to
                    // disjoint element ranges.
                    let (s_chunk, c_chunk) = unsafe {
                        (
                            s_shared.range_mut(er.clone()),
                            c_shared.range_mut(er.clone()),
                        )
                    };
                    kernel::sincos_pass(k, &theta[er], s_chunk, c_chunk);
                });
            }
            _ => kernel::sincos_pass(k, &theta[..nr], s, c),
        }

        let (s, c) = (&*s, &*c);
        let noise_free: Vec<bool> = self
            .members
            .iter()
            .map(|m| m.local_noise.is_null())
            .collect();
        let all_noise_free = noise_free.iter().all(|&b| b);
        let omega = TAU / m0.params.cycle_time().max(m0.min_cycle);
        let stencil = m0.stencil.as_ref();
        let csr = m0.topology.csr();
        let members = &self.members;
        self.for_row_chunks(dtheta, |start, out| {
            let rows = start..start + out.len() / r;
            match stencil {
                Some(st) => {
                    kernel::split_rows_stencil_ensemble(p, st, r, theta, s, c, rows.clone(), out)
                }
                None => kernel::split_rows_csr_ensemble(p, csr, r, theta, s, c, rows.clone(), out),
            }
            if all_noise_free {
                kernel::finalize_rows_ensemble(omega, &m0.coupling_cache[rows], r, out);
            } else {
                for slot in 0..out.len() / r {
                    let i = start + slot;
                    for (rep, d) in out[slot * r..(slot + 1) * r].iter_mut().enumerate() {
                        let intrinsic = if noise_free[rep] {
                            omega
                        } else {
                            members[rep].intrinsic(i, t)
                        };
                        *d = intrinsic + m0.coupling_cache[i] * *d;
                    }
                }
            }
        });
    }

    /// Batched no-delay RHS: the [`Pom::rhs_ode`]-equivalent dispatch on
    /// (kernel, potential).
    fn rhs_ode_batched(&self, t: f64, theta: &[f64], dtheta: &mut [f64]) {
        let m0 = &self.members[0];
        match (m0.kernel, m0.potential) {
            (RhsKernel::SinCosSplit, Potential::KuramotoSin) => {
                self.split_rows(SinPair, 1.0, t, theta, dtheta);
            }
            (RhsKernel::SinCosSplit, Potential::Desync { sigma }) => {
                let k = 1.5 * std::f64::consts::PI / sigma;
                self.split_rows(DesyncPair { sigma }, k, t, theta, dtheta);
            }
            (_, Potential::Tanh) => self.exact_rows(t, theta, dtheta, |x| x.tanh()),
            (_, Potential::Desync { sigma }) => {
                let k = 1.5 * std::f64::consts::PI / sigma;
                self.exact_rows(t, theta, dtheta, move |x| {
                    if x.abs() < sigma {
                        -(k * x).sin()
                    } else {
                        x.signum()
                    }
                });
            }
            (_, Potential::KuramotoSin) => self.exact_rows(t, theta, dtheta, |x| x.sin()),
        }
    }

    /// Batched delay RHS: per replica, the partner phase is read from the
    /// interleaved history at `(j, rep)` and the replica's own
    /// interaction-noise delay; ascending-neighbor per component, as in
    /// [`Pom::rhs_dde`].
    ///
    /// When a pair's delay agrees bitwise across all replicas — the common
    /// case of deterministic hardware latencies shared by the whole
    /// ensemble — the partner phases come from one
    /// [`PhaseHistory::sample_run`] call: the knot search and Hermite
    /// coefficients are paid once instead of once per replica, which is
    /// where the delay-path ensemble speedup comes from. The sampled
    /// values (and the replica-divergent fallback) are bitwise the
    /// single-replica ones, and per component the accumulation stays
    /// ascending-neighbor onto a zeroed accumulator.
    fn rhs_dde_batched(&self, t: f64, theta: &[f64], hist: &dyn PhaseHistory, dtheta: &mut [f64]) {
        let m0 = &self.members[0];
        let r = self.replicas();
        let csr = m0.topology.csr();
        let omega = TAU / m0.params.cycle_time().max(m0.min_cycle);
        let members = &self.members;
        self.for_row_chunks(dtheta, |start, out| {
            let mut taus = vec![0.0f64; r];
            let mut phases = vec![0.0f64; r];
            for slot in 0..out.len() / r {
                let i = start + slot;
                let out_row = &mut out[slot * r..(slot + 1) * r];
                out_row.fill(0.0);
                let ti = &theta[i * r..(i + 1) * r];
                for &j in csr.row(i) {
                    let j = j as usize;
                    if self.shared_delays {
                        // One field evaluation covers the batch: the
                        // members' fingerprints guarantee identical τ.
                        taus.fill(m0.interaction_noise.tau(i, j, t));
                    } else {
                        for (rep, tau) in taus.iter_mut().enumerate() {
                            *tau = members[rep].interaction_noise.tau(i, j, t);
                        }
                    }
                    let tau0 = taus[0];
                    if taus.iter().all(|tau| tau.to_bits() == tau0.to_bits()) {
                        if tau0 > 0.0 {
                            hist.sample_run(t - tau0, j * r, &mut phases);
                        } else {
                            phases.copy_from_slice(&theta[j * r..(j + 1) * r]);
                        }
                    } else {
                        for (rep, ph) in phases.iter_mut().enumerate() {
                            *ph = if taus[rep] > 0.0 {
                                hist.sample(t - taus[rep], j * r + rep)
                            } else {
                                theta[j * r + rep]
                            };
                        }
                    }
                    for ((d, &ph), &th) in out_row.iter_mut().zip(&*phases).zip(ti) {
                        *d += m0.potential.value(ph - th);
                    }
                }
                for (rep, d) in out_row.iter_mut().enumerate() {
                    let m = &members[rep];
                    let intrinsic = if m.local_noise.is_null() {
                        omega
                    } else {
                        m.intrinsic(i, t)
                    };
                    *d = intrinsic + m0.coupling_cache[i] * *d;
                }
            }
        });
    }

    /// Integrate all replicas while streaming each replica's accepted
    /// steps to its own observer, returning one [`SimSummary`] per
    /// replica (replica order).
    ///
    /// Fixed-step solvers (explicitly selected, or `Auto` resolving to
    /// the DDE path) run **lockstep batched**; adaptive solvers run
    /// sequentially per replica (see the module docs). Either way the
    /// results — summaries and observer callback sequences — are bitwise
    /// identical to R independent [`Pom::simulate_observed_ws`] calls.
    ///
    /// Allocates fresh scratch; loops should hold a [`SimWorkspace`] and
    /// call [`PomEnsemble::simulate_observed_ws`].
    pub fn simulate_observed<O: StepObserver>(
        &self,
        inits: &[InitialCondition],
        opts: &SimOptions,
        observers: &mut [O],
    ) -> Result<Vec<SimSummary>, OdeError> {
        self.simulate_observed_ws(inits, opts, observers, &mut SimWorkspace::new())
    }

    /// [`PomEnsemble::simulate_observed`] with caller-provided scratch.
    pub fn simulate_observed_ws<O: StepObserver>(
        &self,
        inits: &[InitialCondition],
        opts: &SimOptions,
        observers: &mut [O],
        ws: &mut SimWorkspace,
    ) -> Result<Vec<SimSummary>, OdeError> {
        let r = self.replicas();
        assert_eq!(inits.len(), r, "one initial condition per replica");
        assert_eq!(observers.len(), r, "one observer per replica");
        count_ensemble(r);

        let (solver, _h_cap) = self.members[0].resolve_solver(opts);
        match solver {
            SolverChoice::FixedRk4 { h } => {
                let layout = self.layout();
                let states: Vec<Vec<f64>> =
                    inits.iter().map(|init| init.phases(self.n())).collect();
                let y0 = layout.pack(&states);
                let mut fan = EnsembleObserver::new(observers, layout);
                let sum = if self.has_delays() {
                    // Retention window: the largest delay over all
                    // replicas. Pruning affects only how much history is
                    // *kept*, never the sampled values, so a wider
                    // window cannot change any replica's results.
                    let window = self
                        .members
                        .iter()
                        .map(|m| m.max_delay())
                        .fold(0.0, f64::max);
                    DdeRk4::new(h)?.integrate_observed(
                        self,
                        0.0,
                        InitialHistory::Constant(y0),
                        opts.t_end,
                        window,
                        ws.ode(),
                        &mut fan,
                    )?
                } else {
                    FixedStepSolver::new(Rk4, h)?.integrate_observed(
                        self,
                        0.0,
                        &y0,
                        opts.t_end,
                        ws.ode(),
                        &mut fan,
                    )?
                };
                Ok((0..r)
                    .map(|rep| {
                        SimSummary::from_final(
                            self.members[rep].omega(),
                            sum.t_end,
                            sum.n_steps,
                            layout.extract(&sum.y_end, rep),
                        )
                    })
                    .collect())
            }
            // Adaptive step control folds the whole state into one error
            // norm — lockstep batching would couple replicas. Run them
            // independently instead (bitwise trivially: it IS the
            // independent path).
            _ => self
                .members
                .iter()
                .zip(inits)
                .zip(observers.iter_mut())
                .map(|((m, init), obs)| m.simulate_observed_ws(init.clone(), opts, obs, ws))
                .collect(),
        }
    }
}

impl OdeSystem for PomEnsemble {
    fn dim(&self) -> usize {
        self.n() * self.replicas()
    }

    fn eval(&self, t: f64, y: &[f64], dydt: &mut [f64]) {
        self.rhs_ode_batched(t, y, dydt);
    }
}

impl DdeSystem for PomEnsemble {
    fn dim(&self) -> usize {
        self.n() * self.replicas()
    }

    fn eval(&self, t: f64, y: &[f64], hist: &dyn PhaseHistory, dydt: &mut [f64]) {
        self.rhs_dde_batched(t, y, hist, dydt);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::PomBuilder;
    use pom_topology::Topology;

    fn member(n: usize, seed: u64) -> Pom {
        PomBuilder::new(n)
            .topology(Topology::ring(n, &[-1, 1]))
            .potential(Potential::KuramotoSin)
            .compute_time(0.9)
            .comm_time(0.1)
            .coupling(3.0)
            .local_noise(pom_noise::WhiteJitter::new(seed, 0.05, 0.5))
            .build()
            .unwrap()
    }

    #[test]
    fn batched_fixed_step_matches_independent_runs_bitwise() {
        let n = 24;
        let seeds = [3u64, 11, 42];
        let opts = SimOptions::new(8.0).solver(SolverChoice::FixedRk4 { h: 0.01 });
        let inits: Vec<InitialCondition> = seeds
            .iter()
            .map(|&s| InitialCondition::RandomSpread {
                amplitude: 0.8,
                seed: s,
            })
            .collect();

        // Independent reference runs.
        let mut want = Vec::new();
        for (&s, init) in seeds.iter().zip(&inits) {
            let sum = member(n, s)
                .simulate_observed(init.clone(), &opts, &mut pom_ode::NoObserver)
                .unwrap();
            want.push(sum.final_state().to_vec());
        }

        // Batched run.
        let ens = PomEnsemble::new(seeds.iter().map(|&s| member(n, s)).collect());
        let mut observers = vec![pom_ode::NoObserver; seeds.len()];
        let got = ens
            .simulate_observed(&inits, &opts, &mut observers)
            .unwrap();
        for (rep, sum) in got.iter().enumerate() {
            assert_eq!(sum.final_state(), &want[rep][..], "replica {rep}");
        }
    }
}
