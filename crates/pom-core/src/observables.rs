//! Observables of the oscillator system.
//!
//! These are the quantities the paper visualizes (§3.2): the circular
//! phase diagram uses raw phases; the "standard view" shows
//! `θ_i − ωt` *normalized to the slowest ("lagger") process as the
//! baseline*; synchrony is quantified by the Kuramoto order parameter and
//! by the phase spread.

/// Kuramoto order parameter `r ∈ [0, 1]` and mean phase `ψ`:
/// `r·e^{iψ} = (1/N)·Σ_j e^{iθ_j}`.
///
/// `r = 1` means perfect synchrony; `r ≈ 0` a uniformly spread
/// (fully desynchronized) phase distribution.
///
/// # Panics
/// Panics on an empty slice.
pub fn order_parameter(phases: &[f64]) -> (f64, f64) {
    assert!(!phases.is_empty(), "order parameter of an empty system");
    let n = phases.len() as f64;
    let (mut re, mut im) = (0.0, 0.0);
    for &p in phases {
        re += p.cos();
        im += p.sin();
    }
    re /= n;
    im /= n;
    ((re * re + im * im).sqrt(), im.atan2(re))
}

/// Phase spread `max_i θ_i − min_i θ_i` (radians).
///
/// Unlike the order parameter this is *not* 2π-periodic: it grows without
/// bound for a desynchronized wavefront, which is exactly what makes it
/// the right yardstick for the bottlenecked case (§5.2.2: "a corresponding
/// decrease in oscillator phase spread").
pub fn phase_spread(phases: &[f64]) -> f64 {
    assert!(!phases.is_empty());
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &p in phases {
        lo = lo.min(p);
        hi = hi.max(p);
    }
    hi - lo
}

/// The paper's standard view (§3.2): `θ_i − ωt`, shifted so the slowest
/// ("lagger") process sits at zero.
pub fn lagger_normalized(phases: &[f64], omega: f64, t: f64) -> Vec<f64> {
    assert!(!phases.is_empty());
    let drift = omega * t;
    let min = phases
        .iter()
        .map(|&p| p - drift)
        .fold(f64::INFINITY, f64::min);
    phases.iter().map(|&p| p - drift - min).collect()
}

/// Differences between adjacent ranks, `θ_{i+1} − θ_i` (length `N − 1`):
/// the wavefront slope diagnostic. A synchronized system has all ≈ 0; a
/// fully developed computational wavefront has all ≈ ±2σ/3 (§5.2.2).
pub fn adjacent_differences(phases: &[f64]) -> Vec<f64> {
    phases.windows(2).map(|w| w[1] - w[0]).collect()
}

/// Winding number of a ring of phases: the net number of full turns
/// accumulated walking once around the ring with each step wrapped to
/// (−π, π]. Communicating processes can never wind (a computation cannot
/// start before its message arrived), so a nonzero winding number is a
/// *phase slip* — the failure mode of the periodic Kuramoto potential the
/// paper calls out in §2.2.2.
pub fn winding_number(phases: &[f64]) -> i64 {
    if phases.len() < 2 {
        return 0;
    }
    let tau = std::f64::consts::TAU;
    let wrap = |x: f64| x - tau * (x / tau).round();
    let mut acc = 0.0;
    for w in phases.windows(2) {
        acc += wrap(w[1] - w[0]);
    }
    acc += wrap(phases[0] - phases[phases.len() - 1]);
    (acc / tau).round() as i64
}

/// Mean of the absolute adjacent differences (a scalar "desync amplitude").
pub fn mean_abs_adjacent_difference(phases: &[f64]) -> f64 {
    let d = adjacent_differences(phases);
    if d.is_empty() {
        return 0.0;
    }
    d.iter().map(|x| x.abs()).sum::<f64>() / d.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{PI, TAU};

    #[test]
    fn order_parameter_synchronized() {
        let (r, psi) = order_parameter(&[0.7; 12]);
        assert!((r - 1.0).abs() < 1e-12);
        assert!((psi - 0.7).abs() < 1e-12);
    }

    #[test]
    fn order_parameter_uniform_spread_is_zero() {
        let n = 16;
        let phases: Vec<f64> = (0..n).map(|k| TAU * k as f64 / n as f64).collect();
        let (r, _) = order_parameter(&phases);
        assert!(r < 1e-12, "r = {r}");
    }

    #[test]
    fn order_parameter_two_opposite() {
        let (r, _) = order_parameter(&[0.0, PI]);
        assert!(r < 1e-12);
    }

    #[test]
    fn order_parameter_is_2pi_invariant() {
        let a = order_parameter(&[0.1, 0.5, 1.0]).0;
        let b = order_parameter(&[0.1 + TAU, 0.5, 1.0 - TAU]).0;
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn phase_spread_basics() {
        assert_eq!(phase_spread(&[1.0, 3.5, 2.0]), 2.5);
        assert_eq!(phase_spread(&[4.2]), 0.0);
        // NOT periodic: a full-turn offset counts.
        assert!((phase_spread(&[0.0, TAU]) - TAU).abs() < 1e-12);
    }

    #[test]
    fn lagger_normalization_zeroes_the_slowest() {
        let omega = TAU;
        let t = 2.0;
        // Oscillator 1 lags by 0.4 behind the free-running phase ωt.
        let phases = vec![omega * t, omega * t - 0.4, omega * t + 0.3];
        let norm = lagger_normalized(&phases, omega, t);
        assert!((norm[1] - 0.0).abs() < 1e-12);
        assert!((norm[0] - 0.4).abs() < 1e-12);
        assert!((norm[2] - 0.7).abs() < 1e-12);
        assert!(norm.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn adjacent_differences_shape() {
        let d = adjacent_differences(&[0.0, 1.0, 3.0, 2.5]);
        assert_eq!(d, vec![1.0, 2.0, -0.5]);
        assert!(adjacent_differences(&[5.0]).is_empty());
    }

    #[test]
    fn mean_abs_adjacent_difference_wavefront() {
        // A perfect wavefront with slope 2 has mean |Δ| = 2.
        let phases: Vec<f64> = (0..10).map(|i| 2.0 * i as f64).collect();
        assert!((mean_abs_adjacent_difference(&phases) - 2.0).abs() < 1e-12);
        // Synchronized: 0.
        assert_eq!(mean_abs_adjacent_difference(&[1.0; 8]), 0.0);
        // Single oscillator: defined as 0.
        assert_eq!(mean_abs_adjacent_difference(&[1.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn order_parameter_rejects_empty() {
        order_parameter(&[]);
    }

    #[test]
    fn winding_number_detects_slips() {
        // No slip: small fluctuations around a constant.
        assert_eq!(winding_number(&[0.0, 0.1, -0.2, 0.05]), 0);
        // One full forward turn distributed over the ring.
        let n = 8;
        let up: Vec<f64> = (0..n).map(|i| TAU * i as f64 / n as f64).collect();
        assert_eq!(winding_number(&up), 1);
        // Two turns backwards.
        let down: Vec<f64> = (0..n).map(|i| -2.0 * TAU * i as f64 / n as f64).collect();
        assert_eq!(winding_number(&down), -2);
        // A slipped Kuramoto state: one oscillator a full 2π ahead does
        // NOT wind (it is a local defect, +2π and −2π cancel)…
        let mut slipped = vec![0.0; 6];
        slipped[3] = TAU;
        assert_eq!(winding_number(&slipped), 0);
        // Degenerate sizes.
        assert_eq!(winding_number(&[]), 0);
        assert_eq!(winding_number(&[1.0]), 0);
    }
}
