//! Linear stability of translationally symmetric states on ring topologies.
//!
//! The paper observes (§5.2.2) that for bottlenecked programs "the
//! translationally symmetric state is unstable and any slight disturbance
//! blows up and leads to a broken-symmetry state", and asks (§6) whether
//! the transition is connected to a Goldstone mode. Both statements are
//! sharp, checkable properties of the linearized model, derived here.
//!
//! On a ring of `N` oscillators with distance set `D`, consider the
//! uniform-gradient state `θ_i(t) = ω̄ t + i·δ` (lockstep is `δ = 0`, a
//! computational wavefront is `δ ≠ 0`). Because every odd potential gives
//! `Σ_d V(dδ)`-balanced forces, this is a relative equilibrium for any
//! `δ`. Perturbing `θ_i → θ_i + ε_i` and Fourier-transforming
//! `ε_i ~ e^{i q_m i}` with `q_m = 2πm/N` yields decoupled modes with
//! complex rates
//!
//! ```text
//! λ_m = s · Σ_{d∈D} V'(d·δ) · (e^{i q_m d} − 1),   s = v_p/N (coupling scale)
//! ```
//!
//! whose real parts `s·Σ_d V'(dδ)(cos(q_m d) − 1)` decide stability:
//!
//! * `λ_0 = 0` always — the **Goldstone mode** (global phase shift).
//! * tanh: `V'(0) > 0` ⇒ all other modes decay ⇒ lockstep stable.
//! * desync: `V'(0) < 0` ⇒ all non-trivial modes *grow* ⇒ lockstep
//!   unstable, and the fastest-growing mode sets the emerging pattern.
//! * desync at `δ = ±2σ/3`: `V'` is even and positive there ⇒ the
//!   wavefront is linearly stable — the "broken-symmetry state" the paper
//!   describes.

use crate::potential::Potential;

/// Real parts of the `N` Fourier-mode growth rates around the uniform
/// state with slope `delta`, for a ring with distance set `distances` and
/// per-oscillator coupling scale `s` (`v_p/N` in the paper's
/// normalization).
pub fn growth_rates(
    potential: Potential,
    coupling_scale: f64,
    distances: &[i32],
    n: usize,
    delta: f64,
) -> Vec<f64> {
    assert!(n > 0);
    let q = std::f64::consts::TAU / n as f64;
    (0..n)
        .map(|m| {
            let qm = q * m as f64;
            coupling_scale
                * distances
                    .iter()
                    .map(|&d| {
                        potential.derivative(d as f64 * delta) * ((qm * d as f64).cos() - 1.0)
                    })
                    .sum::<f64>()
        })
        .collect()
}

/// Largest growth rate over the non-trivial modes (`m ≠ 0`).
///
/// Positive ⇒ the state is linearly unstable.
pub fn max_growth_rate(
    potential: Potential,
    coupling_scale: f64,
    distances: &[i32],
    n: usize,
    delta: f64,
) -> f64 {
    growth_rates(potential, coupling_scale, distances, n, delta)
        .into_iter()
        .skip(1)
        .fold(f64::NEG_INFINITY, f64::max)
}

/// Is lockstep (`δ = 0`) linearly stable for this potential/topology?
pub fn lockstep_stable_on_ring(potential: Potential, distances: &[i32], n: usize) -> bool {
    max_growth_rate(potential, 1.0, distances, n, 0.0) <= 1e-12
}

/// Index of the fastest-growing mode (`m ∈ 1..N`), if any mode grows.
pub fn most_unstable_mode(
    potential: Potential,
    coupling_scale: f64,
    distances: &[i32],
    n: usize,
    delta: f64,
) -> Option<usize> {
    let rates = growth_rates(potential, coupling_scale, distances, n, delta);
    let (m, &rate) = rates
        .iter()
        .enumerate()
        .skip(1)
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite rates"))?;
    (rate > 0.0).then_some(m)
}

#[cfg(test)]
mod tests {
    use super::*;

    const N: usize = 24;
    const D1: [i32; 2] = [-1, 1];
    const D2: [i32; 3] = [-2, -1, 1];

    #[test]
    fn goldstone_mode_is_always_neutral() {
        for pot in [Potential::Tanh, Potential::desync(3.0)] {
            for delta in [0.0, 0.7, 2.0] {
                let rates = growth_rates(pot, 0.5, &D1, N, delta);
                assert!(rates[0].abs() < 1e-14, "λ₀ = {}", rates[0]);
            }
        }
    }

    #[test]
    fn tanh_lockstep_stable() {
        assert!(lockstep_stable_on_ring(Potential::Tanh, &D1, N));
        assert!(lockstep_stable_on_ring(Potential::Tanh, &D2, N));
        let max = max_growth_rate(Potential::Tanh, 0.5, &D1, N, 0.0);
        assert!(max < 0.0, "all non-trivial modes decay, max = {max}");
    }

    #[test]
    fn desync_lockstep_unstable() {
        let pot = Potential::desync(3.0);
        assert!(!lockstep_stable_on_ring(pot, &D1, N));
        let max = max_growth_rate(pot, 0.5, &D1, N, 0.0);
        assert!(max > 0.0, "lockstep must be unstable, max = {max}");
        assert!(most_unstable_mode(pot, 0.5, &D1, N, 0.0).is_some());
    }

    #[test]
    fn desync_wavefront_is_stable() {
        // The broken-symmetry state at δ = 2σ/3 (paper §5.2.2).
        let sigma = 3.0;
        let pot = Potential::desync(sigma);
        let delta = 2.0 * sigma / 3.0;
        let max = max_growth_rate(pot, 0.5, &D1, N, delta);
        assert!(max <= 1e-12, "wavefront must be stable, max = {max}");
    }

    #[test]
    fn growth_rate_scales_with_coupling() {
        let pot = Potential::desync(3.0);
        let r1 = max_growth_rate(pot, 0.5, &D1, N, 0.0);
        let r2 = max_growth_rate(pot, 1.0, &D1, N, 0.0);
        assert!((r2 - 2.0 * r1).abs() < 1e-12);
    }

    #[test]
    fn wider_stencil_grows_faster() {
        // More dependencies pump more energy into the instability.
        let pot = Potential::desync(3.0);
        let narrow = max_growth_rate(pot, 0.5, &D1, N, 0.0);
        let wide = max_growth_rate(pot, 0.5, &D2, N, 0.0);
        assert!(wide > narrow, "{wide} vs {narrow}");
    }

    #[test]
    fn most_unstable_mode_none_for_stable_potential() {
        assert_eq!(most_unstable_mode(Potential::Tanh, 0.5, &D1, N, 0.0), None);
    }

    #[test]
    fn prediction_matches_simulation_growth() {
        // Integrate the full nonlinear model from a tiny single-mode
        // perturbation and compare the measured e-folding rate with λ_m.
        use crate::builder::PomBuilder;
        use crate::initial::InitialCondition;
        use pom_topology::Topology;

        let n = 12;
        let sigma = 3.0;
        let pot = Potential::desync(sigma);
        let vp = 6.0;
        let scale = vp / n as f64;
        let m = 3; // perturb mode 3 directly
        let rate = growth_rates(pot, scale, &D1, n, 0.0)[m];
        assert!(rate > 0.0);

        let model = PomBuilder::new(n)
            .topology(Topology::ring(n, &D1))
            .potential(pot)
            .compute_time(1.0)
            .comm_time(0.0)
            .coupling(vp)
            .build()
            .unwrap();
        let eps = 1e-6;
        let q = std::f64::consts::TAU * m as f64 / n as f64;
        let init: Vec<f64> = (0..n).map(|i| eps * (q * i as f64).cos()).collect();
        let t_end = 4.0;
        let run = model
            .simulate(InitialCondition::Phases(init), t_end)
            .unwrap();
        // Amplitude of the mode at start and end (remove the mean).
        let amp = |phases: &[f64]| {
            let mean = phases.iter().sum::<f64>() / n as f64;
            let (mut re, mut im) = (0.0, 0.0);
            for (i, &p) in phases.iter().enumerate() {
                re += (p - mean) * (q * i as f64).cos();
                im += (p - mean) * (q * i as f64).sin();
            }
            (re * re + im * im).sqrt()
        };
        let a0 = amp(run.trajectory().state(0));
        let a1 = amp(run.trajectory().last().unwrap());
        let measured = (a1 / a0).ln() / t_end;
        assert!(
            (measured - rate).abs() < 0.05 * rate.abs().max(0.01),
            "measured {measured}, predicted {rate}"
        );
    }
}
