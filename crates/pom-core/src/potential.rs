//! Interaction potentials `V(Δθ)` — the paper's key modeling device.
//!
//! The potential is evaluated on the phase difference `x = θ_j − θ_i`
//! seen by oscillator `i` (Eq. 2). Its shape decides the collective fate
//! of the program:
//!
//! * [`Potential::Tanh`] (Eq. 3) — `V(x) = tanh(x)`: attractive for *all*
//!   distances, no phase slips, models resource-scalable programs that
//!   resynchronize after any disturbance (§5.2.1).
//! * [`Potential::Desync`] (Eq. 4) — `V(x) = −sin(3π/(2σ)·x)` for
//!   `|x| < σ`, `sgn(x)` beyond: short-range **repulsive**, long-range
//!   attractive. Lockstep is unstable; adjacent phase differences settle
//!   at the first zero `2σ/3` (§5.2.2). Models memory-/bandwidth-bound
//!   programs that drift into a computational wavefront.
//! * [`Potential::KuramotoSin`] — the plain Kuramoto `sin(x)`, provided for
//!   the contrast experiment (§2.2.2: periodic ⇒ phase slips, zeros at
//!   multiples of π ⇒ unsuitable for parallel programs).
//!
//! ### Sign convention
//!
//! The paper writes Eq. 3 in terms of `θ_j − θ_i` but Eq. 4 in terms of
//! `θ_i − θ_j`. We use the single convention `x = θ_j − θ_i` throughout
//! and require the *stated dynamics* (see DESIGN.md §1): with the forms
//! above, pair dynamics `ẋ = −2·(v_p/N)·V(x)`··· gives exactly the paper's
//! claims — tanh: `x → 0` stable; desync: `x = 0` unstable,
//! `|x| = 2σ/3` stable, attraction at long range. Unit tests pin each
//! property.

use std::f64::consts::PI;

/// An interaction potential (dimensionless force on the phase velocity).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Potential {
    /// Paper Eq. 3: `V(x) = tanh(x)` — resource-scalable programs.
    Tanh,
    /// Paper Eq. 4: short-range repulsion within the interaction horizon
    /// `sigma`, constant attraction beyond — resource-bottlenecked
    /// programs.
    Desync {
        /// Interaction horizon `σ > 0`: the transition to the constant
        /// (saturated) part of the potential. Small `σ` ⇒ stiff, almost
        /// synchronized; large `σ` ⇒ strong desynchronization (§5.2.2).
        sigma: f64,
    },
    /// The plain Kuramoto model's periodic potential `sin(x)` (§2.2.2,
    /// for contrast experiments only).
    KuramotoSin,
}

impl Potential {
    /// Convenience constructor for the scalable (tanh) potential.
    pub fn tanh() -> Self {
        Potential::Tanh
    }

    /// Convenience constructor for the bottlenecked potential with
    /// interaction horizon `sigma`.
    ///
    /// # Panics
    /// Panics if `sigma` is not positive and finite.
    pub fn desync(sigma: f64) -> Self {
        assert!(sigma > 0.0 && sigma.is_finite(), "sigma must be positive");
        Potential::Desync { sigma }
    }

    /// Evaluate `V(x)` with `x = θ_j − θ_i`.
    #[inline]
    pub fn value(&self, x: f64) -> f64 {
        match *self {
            Potential::Tanh => x.tanh(),
            Potential::Desync { sigma } => {
                if x.abs() < sigma {
                    -(1.5 * PI / sigma * x).sin()
                } else {
                    x.signum()
                }
            }
            Potential::KuramotoSin => x.sin(),
        }
    }

    /// Derivative `V'(x)` (used by the linear stability analysis).
    #[inline]
    pub fn derivative(&self, x: f64) -> f64 {
        match *self {
            Potential::Tanh => {
                let t = x.tanh();
                1.0 - t * t
            }
            Potential::Desync { sigma } => {
                if x.abs() < sigma {
                    let k = 1.5 * PI / sigma;
                    -k * (k * x).cos()
                } else {
                    0.0
                }
            }
            Potential::KuramotoSin => x.cos(),
        }
    }

    /// The stable pairwise phase separation this potential drives a
    /// coupled pair towards: `0` for synchronizing potentials, `2σ/3` for
    /// the desynchronizing potential (the first zero with positive slope).
    pub fn stable_pair_separation(&self) -> f64 {
        match *self {
            Potential::Tanh | Potential::KuramotoSin => 0.0,
            Potential::Desync { sigma } => 2.0 * sigma / 3.0,
        }
    }

    /// `true` if lockstep (`Δθ = 0`) is a *stable* state under pair
    /// dynamics, i.e. `V'(0) > 0`.
    pub fn lockstep_stable(&self) -> bool {
        self.derivative(0.0) > 0.0
    }

    /// `true` if the potential is periodic (allows phase slips — the
    /// property that makes plain Kuramoto unsuitable, §2.2.2).
    pub fn allows_phase_slips(&self) -> bool {
        matches!(self, Potential::KuramotoSin)
    }

    /// Short name for output tables.
    pub fn name(&self) -> &'static str {
        match self {
            Potential::Tanh => "tanh",
            Potential::Desync { .. } => "desync",
            Potential::KuramotoSin => "kuramoto-sin",
        }
    }

    /// Sample the potential on a uniform grid (used by the Fig. 1(a)
    /// reproduction and the potential-timeline view).
    pub fn sample_curve(&self, x_min: f64, x_max: f64, n: usize) -> Vec<(f64, f64)> {
        assert!(n >= 2 && x_max > x_min);
        (0..n)
            .map(|k| {
                let x = x_min + (x_max - x_min) * k as f64 / (n - 1) as f64;
                (x, self.value(x))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SIGMA: f64 = 3.0;

    fn desync() -> Potential {
        Potential::desync(SIGMA)
    }

    #[test]
    fn all_potentials_are_odd() {
        for p in [Potential::Tanh, desync(), Potential::KuramotoSin] {
            for &x in &[0.1, 0.5, 1.0, 2.0, SIGMA - 1e-6, SIGMA + 1.0, 10.0] {
                assert!(
                    (p.value(x) + p.value(-x)).abs() < 1e-12,
                    "{} not odd at x = {x}",
                    p.name()
                );
            }
            assert_eq!(p.value(0.0), 0.0);
        }
    }

    #[test]
    fn all_potentials_bounded_by_one() {
        for p in [Potential::Tanh, desync(), Potential::KuramotoSin] {
            for k in -100..=100 {
                let x = k as f64 * 0.17;
                assert!(p.value(x).abs() <= 1.0 + 1e-12);
            }
        }
    }

    #[test]
    fn tanh_attractive_everywhere() {
        // V(x) > 0 for x > 0: a leading partner pulls i forward at any
        // distance — the "snaps back into sync" property (§5.2.1).
        for &x in &[1e-3, 0.1, 1.0, 5.0, 50.0] {
            assert!(Potential::Tanh.value(x) > 0.0);
        }
        assert!(Potential::Tanh.lockstep_stable());
        assert_eq!(Potential::Tanh.stable_pair_separation(), 0.0);
    }

    #[test]
    fn desync_short_range_repulsive_long_range_attractive() {
        let p = desync();
        // Short range (0 < x < 2σ/3): V(x) < 0 — j slightly ahead pushes i
        // *back* (repulsion from lockstep).
        for &x in &[0.05, 0.5, 1.0, 1.9] {
            assert!(p.value(x) < 0.0, "x = {x}: {}", p.value(x));
        }
        // Past the first zero and beyond the horizon: attraction.
        for &x in &[2.2, 2.9, SIGMA, 5.0, 100.0] {
            assert!(p.value(x) > 0.0, "x = {x}: {}", p.value(x));
        }
        assert!(!p.lockstep_stable());
    }

    #[test]
    fn desync_first_zero_at_two_thirds_sigma() {
        let p = desync();
        let x0 = p.stable_pair_separation();
        assert!((x0 - 2.0).abs() < 1e-12); // 2σ/3 with σ = 3
        assert!(p.value(x0).abs() < 1e-12, "V(2σ/3) = {}", p.value(x0));
        // Pair dynamics: x = θ_j − θ_i obeys ẋ = −2cV(x) (c > 0, V odd).
        // Stability of x0 requires the flow slope −2cV'(x0) < 0, i.e.
        // V'(x0) > 0. (The full ODE integration test lives in model.rs.)
        assert!(p.derivative(x0) > 0.0);
    }

    #[test]
    fn desync_continuous_at_horizon() {
        let p = desync();
        let inside = p.value(SIGMA - 1e-9);
        let outside = p.value(SIGMA + 1e-9);
        // −sin(3π/2) = +1 matches sgn(+) = +1.
        assert!((inside - 1.0).abs() < 1e-6);
        assert!((outside - 1.0).abs() < 1e-12);
    }

    #[test]
    fn desync_derivative_zero_outside_horizon() {
        let p = desync();
        assert_eq!(p.derivative(SIGMA + 0.1), 0.0);
        assert_eq!(p.derivative(-SIGMA - 5.0), 0.0);
        assert!(p.derivative(0.0) < 0.0, "short-range repulsion ⇒ V'(0) < 0");
    }

    #[test]
    fn derivative_matches_finite_difference() {
        let h = 1e-6;
        for p in [Potential::Tanh, desync(), Potential::KuramotoSin] {
            for &x in &[0.0, 0.3, 1.0, 1.9, 2.5, 4.0] {
                // Skip the kink at |x| = σ for the desync potential.
                if matches!(p, Potential::Desync { .. }) && (x - SIGMA).abs() < 0.2 {
                    continue;
                }
                let fd = (p.value(x + h) - p.value(x - h)) / (2.0 * h);
                assert!(
                    (fd - p.derivative(x)).abs() < 1e-5,
                    "{} at x = {x}: fd {fd} vs {}",
                    p.name(),
                    p.derivative(x)
                );
            }
        }
    }

    #[test]
    fn kuramoto_allows_phase_slips_others_do_not() {
        assert!(Potential::KuramotoSin.allows_phase_slips());
        assert!(!Potential::Tanh.allows_phase_slips());
        assert!(!desync().allows_phase_slips());
        // The mechanism: sin has zeros at multiples of π (2π-apart phases
        // feel no force), tanh does not.
        assert!(Potential::KuramotoSin.value(2.0 * PI).abs() < 1e-12);
        assert!(Potential::Tanh.value(2.0 * PI) > 0.99);
    }

    #[test]
    fn sigma_scales_the_horizon() {
        let narrow = Potential::desync(1.0);
        let wide = Potential::desync(6.0);
        assert_eq!(narrow.stable_pair_separation(), 2.0 / 3.0);
        assert_eq!(wide.stable_pair_separation(), 4.0);
        // At x = 2: outside the narrow horizon (attractive), inside the
        // wide one (repulsive).
        assert!(narrow.value(2.0) > 0.0);
        assert!(wide.value(2.0) < 0.0);
    }

    #[test]
    #[should_panic(expected = "sigma must be positive")]
    fn desync_rejects_bad_sigma() {
        Potential::desync(-1.0);
    }

    #[test]
    fn sample_curve_covers_range() {
        let pts = desync().sample_curve(-10.0, 10.0, 101);
        assert_eq!(pts.len(), 101);
        assert_eq!(pts[0].0, -10.0);
        assert_eq!(pts[100].0, 10.0);
        assert_eq!(pts[50].0, 0.0);
        assert_eq!(pts[50].1, 0.0);
    }
}
