//! Model parameters: cycle durations, protocol factor `β`, distance
//! weight `κ`, and the derived coupling strength `v_p`.
//!
//! Paper §3.1: "The coupling strength `v_p = β·κ/(t_comp + t_comm)` is
//! motivated by the connection between idle wave speed and communication
//! characteristics [Afzal et al. 2021]: Messages sent via the eager
//! (rendezvous) protocol have β = 1 (2), and κ is the sum over all
//! communication distances" — or the longest distance only under a single
//! `MPI_Waitall` (see `pom_topology::kappa`).

use std::f64::consts::TAU;

/// MPI point-to-point protocol, fixing the paper's `β` factor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Protocol {
    /// Eager: the message is shipped immediately; `β = 1`.
    #[default]
    Eager,
    /// Rendezvous: the sender stalls until the receiver posts the matching
    /// receive; dependencies act both ways per cycle; `β = 2`.
    Rendezvous,
}

impl Protocol {
    /// The paper's `β` factor.
    pub fn beta(self) -> f64 {
        match self {
            Protocol::Eager => 1.0,
            Protocol::Rendezvous => 2.0,
        }
    }

    /// Name for output tables.
    pub fn name(self) -> &'static str {
        match self {
            Protocol::Eager => "eager",
            Protocol::Rendezvous => "rendezvous",
        }
    }
}

/// Scalar parameters of the oscillator model.
#[derive(Debug, Clone, PartialEq)]
pub struct PomParams {
    /// Number of oscillators (MPI processes).
    pub n: usize,
    /// Duration of the computation phase per cycle, seconds.
    pub t_comp: f64,
    /// Duration of the communication phase per cycle, seconds.
    pub t_comm: f64,
    /// Point-to-point protocol (sets `β`).
    pub protocol: Protocol,
    /// Communication-distance weight `κ`.
    pub kappa: f64,
    /// Optional override of the coupling strength `v_p`; when `None`,
    /// `v_p = β·κ/(t_comp + t_comm)` per the paper.
    pub coupling_override: Option<f64>,
}

impl PomParams {
    /// Parameters with the paper's derived coupling.
    pub fn new(n: usize, t_comp: f64, t_comm: f64, protocol: Protocol, kappa: f64) -> Self {
        Self {
            n,
            t_comp,
            t_comm,
            protocol,
            kappa,
            coupling_override: None,
        }
    }

    /// Cycle duration `t_comp + t_comm` (the oscillator period without
    /// noise).
    pub fn cycle_time(&self) -> f64 {
        self.t_comp + self.t_comm
    }

    /// Natural angular frequency `ω = 2π / (t_comp + t_comm)`.
    pub fn omega(&self) -> f64 {
        TAU / self.cycle_time()
    }

    /// Effective `β·κ` product (the paper's idle-wave speed knob, §5.1.1).
    pub fn beta_kappa(&self) -> f64 {
        self.protocol.beta() * self.kappa
    }

    /// Coupling strength `v_p`.
    pub fn coupling(&self) -> f64 {
        self.coupling_override
            .unwrap_or_else(|| self.beta_kappa() / self.cycle_time())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn beta_factors_match_paper() {
        assert_eq!(Protocol::Eager.beta(), 1.0);
        assert_eq!(Protocol::Rendezvous.beta(), 2.0);
    }

    #[test]
    fn omega_is_two_pi_over_cycle() {
        let p = PomParams::new(8, 0.75, 0.25, Protocol::Eager, 2.0);
        assert!((p.cycle_time() - 1.0).abs() < 1e-15);
        assert!((p.omega() - TAU).abs() < 1e-12);
    }

    #[test]
    fn coupling_formula() {
        // v_p = β·κ / (t_comp + t_comm) = 1·2 / 1.0.
        let p = PomParams::new(8, 0.9, 0.1, Protocol::Eager, 2.0);
        assert!((p.coupling() - 2.0).abs() < 1e-12);
        // Rendezvous doubles it.
        let p = PomParams::new(8, 0.9, 0.1, Protocol::Rendezvous, 2.0);
        assert!((p.coupling() - 4.0).abs() < 1e-12);
        assert_eq!(p.beta_kappa(), 4.0);
    }

    #[test]
    fn coupling_override_wins() {
        let mut p = PomParams::new(8, 1.0, 0.0, Protocol::Eager, 2.0);
        p.coupling_override = Some(7.5);
        assert_eq!(p.coupling(), 7.5);
    }

    #[test]
    fn zero_kappa_means_free_oscillators() {
        // §5.1.1: βκ ≈ 0 corresponds to free processes, no dependencies.
        let p = PomParams::new(8, 1.0, 0.0, Protocol::Eager, 0.0);
        assert_eq!(p.coupling(), 0.0);
    }
}
