//! The coupled-oscillator system itself: Eq. (2) as an `OdeSystem`/`DdeSystem`.

use std::f64::consts::TAU;
use std::sync::{Arc, Mutex};

use pom_kernels::par::{ChunkPool, DisjointSliceMut};
use pom_noise::{InteractionNoise, LocalNoise};
use pom_ode::dde::{DdeSystem, PhaseHistory};
use pom_ode::OdeSystem;
use pom_topology::{RingStencil, Topology};

use crate::kernel::{self, DesyncPair, RhsKernel, SinPair, SplitScratch};
use crate::params::PomParams;
use crate::potential::Potential;

/// Below this row count the fork–join hand-off costs more than the chunked
/// work saves; the RHS then runs inline even when a pool is configured
/// (and the builder skips spawning pool threads entirely — a sweep
/// building thousands of small models must not churn OS threads).
pub(crate) const MIN_PAR_ROWS: usize = 2048;

/// Normalization of the coupling sum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Normalization {
    /// Divide by `N`, exactly as written in paper Eq. (2). Faithful, but
    /// note that for sparse topologies the coupling per oscillator then
    /// shrinks as `1/N`.
    #[default]
    ByN,
    /// Divide by the oscillator's degree — an extension that keeps the
    /// per-neighbor coupling independent of system size (used by the
    /// scaling ablation; documented in DESIGN.md §8).
    ByDegree,
}

/// The Physical Oscillator Model: `N` coupled oscillators with topology
/// `T_ij`, potential `V`, and the paper's two noise terms.
///
/// Construct via [`crate::builder::PomBuilder`].
pub struct Pom {
    pub(crate) params: PomParams,
    pub(crate) topology: Topology,
    pub(crate) potential: Potential,
    pub(crate) local_noise: Arc<dyn LocalNoise>,
    pub(crate) interaction_noise: Arc<dyn InteractionNoise>,
    pub(crate) normalization: Normalization,
    /// Smallest admissible cycle time, guarding the `2π/(… + ζ)`
    /// denominator against non-physical noise excursions.
    pub(crate) min_cycle: f64,
    /// Per-oscillator coupling prefactor `v_p/N` or `v_p/deg(i)`,
    /// precomputed at build time — the right-hand side is evaluated
    /// millions of times per run and must not re-derive static factors.
    pub(crate) coupling_cache: Vec<f64>,
    /// RHS kernel selection (see [`RhsKernel`] for the accuracy policy).
    pub(crate) kernel: RhsKernel,
    /// Resolved `rhs_threads` configuration (reporting; the pool below is
    /// only spawned when the model is large enough to ever use it).
    pub(crate) rhs_threads: usize,
    /// Index-free ring description, present when the topology is a
    /// periodic ring — the split kernel's neighbor fast path.
    pub(crate) stencil: Option<RingStencil>,
    /// Worker pool splitting one RHS evaluation across cores (absent for
    /// the default serial configuration).
    pub(crate) pool: Option<ChunkPool>,
    /// `sin`/`cos` arrays for the split kernel. The ODE contract evaluates
    /// the RHS through `&self`, so the scratch sits behind a mutex; the
    /// lock is uncontended (one integration drives one model at a time)
    /// and is taken once per evaluation, not per oscillator.
    pub(crate) split_scratch: Mutex<SplitScratch>,
}

impl std::fmt::Debug for Pom {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pom")
            .field("n", &self.params.n)
            .field("potential", &self.potential)
            .field("coupling", &self.params.coupling())
            .field("topology", &self.topology)
            .field("has_delays", &self.has_delays())
            .field("kernel", &self.kernel)
            .field("rhs_threads", &self.rhs_threads())
            .finish_non_exhaustive()
    }
}

impl Pom {
    /// Scalar parameters.
    pub fn params(&self) -> &PomParams {
        &self.params
    }

    /// The topology matrix `T`.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The interaction potential `V`.
    pub fn potential(&self) -> Potential {
        self.potential
    }

    /// Number of oscillators.
    pub fn n(&self) -> usize {
        self.params.n
    }

    /// Natural angular frequency `ω` (noise-free).
    pub fn omega(&self) -> f64 {
        self.params.omega()
    }

    /// `true` if process-local noise `ζ_i(t)` is active (the RHS is then
    /// potentially discontinuous in `t` — integrators must bound their
    /// step size; see `simulate_with`).
    pub fn has_local_noise(&self) -> bool {
        !self.local_noise.is_null()
    }

    /// `true` if the interaction noise forces the delay-equation path.
    pub fn has_delays(&self) -> bool {
        !self.interaction_noise.is_null()
    }

    /// Largest interaction delay (history depth needed by the DDE solver).
    pub fn max_delay(&self) -> f64 {
        self.interaction_noise.max_delay()
    }

    /// Coupling prefactor for oscillator `i` (`v_p/N` or `v_p/deg(i)`),
    /// served from the build-time cache.
    #[cfg(test)]
    pub(crate) fn coupling_scale(&self, i: usize) -> f64 {
        self.coupling_cache[i]
    }

    /// Compute the coupling prefactor from first principles (used once at
    /// build time to fill the cache).
    pub(crate) fn compute_coupling_scale(&self, i: usize) -> f64 {
        let vp = self.params.coupling();
        match self.normalization {
            Normalization::ByN => vp / self.params.n as f64,
            Normalization::ByDegree => vp / self.topology.degree(i).max(1) as f64,
        }
    }

    /// Selected RHS kernel.
    pub fn kernel(&self) -> RhsKernel {
        self.kernel
    }

    /// Configured thread fan-out for a single RHS evaluation (1 = serial).
    /// Models below the internal ~2k-row threshold always evaluate inline,
    /// whatever this reports.
    pub fn rhs_threads(&self) -> usize {
        self.rhs_threads
    }

    /// Intrinsic term `2π / (t_comp + t_comm + ζ_i(t))`, with the period
    /// clamped below by `min_cycle`. `pub(crate)` for the ensemble RHS,
    /// which evaluates each replica's intrinsic through its own member.
    #[inline]
    pub(crate) fn intrinsic(&self, i: usize, t: f64) -> f64 {
        let mut cycle = self.params.cycle_time();
        if !self.local_noise.is_null() {
            cycle += self.local_noise.zeta(i, t);
        }
        TAU / cycle.max(self.min_cycle)
    }

    /// Run `rows(start, out_chunk)` over every oscillator row, either
    /// inline or chunked across the worker pool. Each chunk owns a
    /// disjoint contiguous `dtheta` range, so parallel execution performs
    /// exactly the per-row arithmetic of the serial loop — results are
    /// bitwise identical for every thread count.
    #[inline]
    fn for_row_chunks(&self, dtheta: &mut [f64], rows: impl Fn(usize, &mut [f64]) + Sync) {
        let n = self.params.n;
        match &self.pool {
            Some(pool) if n >= MIN_PAR_ROWS => {
                let shared = DisjointSliceMut::new(&mut dtheta[..n]);
                pool.run(n, &|_slot, range| {
                    // SAFETY: `ChunkPool::run` hands each slot a disjoint
                    // range of `0..n`.
                    let chunk = unsafe { shared.range_mut(range.clone()) };
                    rows(range.start, chunk);
                });
            }
            _ => rows(0, &mut dtheta[..n]),
        }
    }

    /// Reference (`RhsKernel::Exact`) row loop: one fused pass computing
    /// `intrinsic + scale_i · Σ_j V(θ_j − θ_i)` per row, the potential's
    /// parameters hoisted into `v` (monomorphized per shape by
    /// [`Pom::rhs_ode`]). Per-element operations — and therefore results —
    /// are bitwise identical to the historical fill-then-accumulate pair
    /// of passes, while touching `dtheta` once instead of twice.
    #[inline]
    fn exact_rows(&self, t: f64, theta: &[f64], dtheta: &mut [f64], v: impl Fn(f64) -> f64 + Sync) {
        let csr = self.topology.csr();
        let noise_free = self.local_noise.is_null();
        let omega = TAU / self.params.cycle_time().max(self.min_cycle);
        self.for_row_chunks(dtheta, |start, out| {
            for (slot, d) in out.iter_mut().enumerate() {
                let i = start + slot;
                let theta_i = theta[i];
                let mut coupling = 0.0;
                for &j in csr.row(i) {
                    coupling += v(theta[j as usize] - theta_i);
                }
                let intrinsic = if noise_free {
                    omega
                } else {
                    self.intrinsic(i, t)
                };
                *d = intrinsic + self.coupling_cache[i] * coupling;
            }
        });
    }

    /// Split-kernel row loop: phase 1 fills `sin(kθ)`/`cos(kθ)` arrays
    /// (one vectorized pass, chunked over the pool), phase 2 accumulates
    /// the coupling sums from the arrays — via the index-free ring stencil
    /// when the topology has one, else the flat CSR — and fuses in the
    /// intrinsic term and coupling prefactor.
    fn split_rows<P: kernel::PairTerm>(
        &self,
        p: P,
        k: f64,
        t: f64,
        theta: &[f64],
        dtheta: &mut [f64],
    ) {
        let n = self.params.n;
        let mut guard = self.split_scratch.lock().expect("split scratch");
        let (s, c) = guard.halves(n);

        match &self.pool {
            Some(pool) if n >= MIN_PAR_ROWS => {
                let s_shared = DisjointSliceMut::new(s);
                let c_shared = DisjointSliceMut::new(c);
                pool.run(n, &|_slot, range| {
                    // SAFETY: disjoint ranges per slot (ChunkPool::run).
                    let (s_chunk, c_chunk) = unsafe {
                        (
                            s_shared.range_mut(range.clone()),
                            c_shared.range_mut(range.clone()),
                        )
                    };
                    kernel::sincos_pass(k, &theta[range], s_chunk, c_chunk);
                });
            }
            _ => kernel::sincos_pass(k, &theta[..n], s, c),
        }

        let (s, c) = (&*s, &*c);
        let noise_free = self.local_noise.is_null();
        let omega = TAU / self.params.cycle_time().max(self.min_cycle);
        let stencil = self.stencil.as_ref();
        let csr = self.topology.csr();
        self.for_row_chunks(dtheta, |start, out| {
            let rows = start..start + out.len();
            match stencil {
                Some(st) => kernel::split_rows_stencil(p, st, theta, s, c, rows.clone(), out),
                None => kernel::split_rows_csr(p, csr, theta, s, c, rows.clone(), out),
            }
            if noise_free {
                kernel::finalize_rows(omega, &self.coupling_cache[rows], out);
            } else {
                for (slot, d) in out.iter_mut().enumerate() {
                    let i = start + slot;
                    *d = self.intrinsic(i, t) + self.coupling_cache[i] * *d;
                }
            }
        });
    }

    /// Shared RHS for the no-delay path, dispatching on the kernel
    /// selection. `SinCosSplit` applies to the sine-structured potentials
    /// (`KuramotoSin` and the sine branch of `Desync`); `Tanh` has no
    /// angle-addition split and falls back to the exact per-pair math.
    fn rhs_ode(&self, t: f64, theta: &[f64], dtheta: &mut [f64]) {
        match (self.kernel, self.potential) {
            (RhsKernel::SinCosSplit, Potential::KuramotoSin) => {
                self.split_rows(SinPair, 1.0, t, theta, dtheta);
            }
            (RhsKernel::SinCosSplit, Potential::Desync { sigma }) => {
                let k = 1.5 * std::f64::consts::PI / sigma;
                self.split_rows(DesyncPair { sigma }, k, t, theta, dtheta);
            }
            (_, Potential::Tanh) => self.exact_rows(t, theta, dtheta, |x| x.tanh()),
            (_, Potential::Desync { sigma }) => {
                let k = 1.5 * std::f64::consts::PI / sigma;
                self.exact_rows(t, theta, dtheta, move |x| {
                    if x.abs() < sigma {
                        -(k * x).sin()
                    } else {
                        x.signum()
                    }
                });
            }
            (_, Potential::KuramotoSin) => self.exact_rows(t, theta, dtheta, |x| x.sin()),
        }
    }

    /// Shared RHS for the delay path: partner phases are read from the
    /// history at `t − τ_ij(t)`. History sampling precludes the sin/cos
    /// precomputation (each pair reads a different past time), so the pair
    /// math is always exact here; rows still fan out across the pool.
    fn rhs_dde(&self, t: f64, theta: &[f64], hist: &dyn PhaseHistory, dtheta: &mut [f64]) {
        let csr = self.topology.csr();
        let noise_free = self.local_noise.is_null();
        let omega = TAU / self.params.cycle_time().max(self.min_cycle);
        self.for_row_chunks(dtheta, |start, out| {
            for (slot, d) in out.iter_mut().enumerate() {
                let i = start + slot;
                let mut coupling = 0.0;
                for &j in csr.row(i) {
                    let j = j as usize;
                    let tau = self.interaction_noise.tau(i, j, t);
                    let theta_j = if tau > 0.0 {
                        hist.sample(t - tau, j)
                    } else {
                        theta[j]
                    };
                    coupling += self.potential.value(theta_j - theta[i]);
                }
                let intrinsic = if noise_free {
                    omega
                } else {
                    self.intrinsic(i, t)
                };
                *d = intrinsic + self.coupling_cache[i] * coupling;
            }
        });
    }
}

impl OdeSystem for Pom {
    fn dim(&self) -> usize {
        self.params.n
    }

    fn eval(&self, t: f64, y: &[f64], dydt: &mut [f64]) {
        self.rhs_ode(t, y, dydt);
    }
}

impl DdeSystem for Pom {
    fn dim(&self) -> usize {
        self.params.n
    }

    fn eval(&self, t: f64, y: &[f64], hist: &dyn PhaseHistory, dydt: &mut [f64]) {
        self.rhs_dde(t, y, hist, dydt);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::PomBuilder;
    use crate::params::Protocol;
    use pom_noise::{DelayEvent, OneOffDelays};
    use pom_ode::dopri5::Dopri5;

    /// Two coupled oscillators with equal frequencies: helper returning the
    /// phase difference trajectory under a given potential and coupling.
    fn pair_difference(potential: Potential, vp: f64, x0: f64, t_end: f64) -> f64 {
        let model = PomBuilder::new(2)
            .topology(Topology::ring(2, &[1]))
            .potential(potential)
            .compute_time(1.0)
            .comm_time(0.0)
            .coupling(vp)
            .build()
            .unwrap();
        let sol = Dopri5::new()
            .rtol(1e-10)
            .atol(1e-10)
            .integrate(&model, 0.0, &[0.0, x0], t_end)
            .unwrap();
        sol.y_end()[1] - sol.y_end()[0]
    }

    #[test]
    fn two_oscillator_tanh_matches_closed_form() {
        // With N = 2 and one neighbor each (coupling scale v_p/2):
        // θ̇₀ = ω + (v_p/2)V(x), θ̇₁ = ω + (v_p/2)V(−x), x = θ₁ − θ₀
        // ⇒ ẋ = (v_p/2)(V(−x) − V(x)) = −v_p·tanh(x)
        // ⇒ sinh x(t) = sinh x(0)·e^{−v_p t}.
        let vp = 2.0;
        let x0 = 1.5;
        for &t in &[0.5, 1.0, 2.0] {
            let x = pair_difference(Potential::Tanh, vp, x0, t);
            let exact = (x0.sinh() * (-vp * t).exp()).asinh();
            assert!(
                (x - exact).abs() < 1e-7,
                "t = {t}: x = {x}, exact = {exact}"
            );
        }
    }

    #[test]
    fn two_oscillator_desync_settles_at_two_thirds_sigma() {
        let sigma = 3.0;
        // Start slightly off lockstep; the repulsive core blows the
        // difference up to the stable separation 2σ/3 (§5.2.2).
        let x = pair_difference(Potential::desync(sigma), 2.0, 0.05, 200.0);
        assert!(
            (x.abs() - 2.0 * sigma / 3.0).abs() < 1e-6,
            "settled at {x}, want ±{}",
            2.0 * sigma / 3.0
        );
    }

    #[test]
    fn two_oscillator_desync_lockstep_is_unstable() {
        // Exactly at lockstep the system stays (fixed point)…
        let x = pair_difference(Potential::desync(3.0), 2.0, 0.0, 50.0);
        assert!(x.abs() < 1e-9);
        // …but an infinitesimal kick departs: after the same time a tiny
        // perturbation has grown by orders of magnitude.
        let x = pair_difference(Potential::desync(3.0), 2.0, 1e-6, 50.0);
        assert!(x.abs() > 0.1, "perturbation must grow, got {x}");
    }

    #[test]
    fn free_oscillators_advance_at_natural_frequency() {
        // κ = 0 ⇒ v_p = 0 ⇒ free processes (§5.1.1, βκ ≈ 0 case).
        let model = PomBuilder::new(4)
            .topology(Topology::ring(4, &[-1, 1]))
            .potential(Potential::Tanh)
            .compute_time(0.6)
            .comm_time(0.4)
            .kappa(0.0)
            .build()
            .unwrap();
        let sol = Dopri5::new()
            .rtol(1e-10)
            .atol(1e-10)
            .integrate(&model, 0.0, &[0.0, 1.0, 2.0, 3.0], 5.0)
            .unwrap();
        let omega = model.omega();
        for i in 0..4 {
            let expect = i as f64 + omega * 5.0;
            assert!((sol.y_end()[i] - expect).abs() < 1e-7, "osc {i}");
        }
    }

    #[test]
    fn one_off_delay_slows_target_rank() {
        let injection = OneOffDelays::new(vec![DelayEvent {
            rank: 1,
            t_start: 0.0,
            duration: 5.0,
            extra: 1.0, // doubles the cycle time → halves the frequency
        }]);
        let model = PomBuilder::new(3)
            .topology(Topology::ring(3, &[-1, 1]))
            .potential(Potential::Tanh)
            .compute_time(1.0)
            .comm_time(0.0)
            .kappa(0.0) // uncoupled: isolate the noise effect
            .local_noise(injection)
            .build()
            .unwrap();
        let sol = Dopri5::new()
            .rtol(1e-9)
            .atol(1e-9)
            .integrate(&model, 0.0, &[0.0; 3], 5.0)
            .unwrap();
        let omega = model.omega();
        assert!((sol.y_end()[0] - omega * 5.0).abs() < 1e-6);
        // Rank 1 ran at half frequency for the whole window.
        assert!((sol.y_end()[1] - omega * 5.0 / 2.0).abs() < 1e-6);
        assert!((sol.y_end()[2] - omega * 5.0).abs() < 1e-6);
    }

    #[test]
    fn degree_normalization_strengthens_sparse_coupling() {
        let build = |norm| {
            PomBuilder::new(16)
                .topology(Topology::ring(16, &[-1, 1]))
                .potential(Potential::Tanh)
                .compute_time(1.0)
                .comm_time(0.0)
                .protocol(Protocol::Eager)
                .kappa(2.0)
                .normalization(norm)
                .build()
                .unwrap()
        };
        let by_n = build(Normalization::ByN);
        let by_deg = build(Normalization::ByDegree);
        // v_p = 2; per-neighbor scale: 2/16 vs 2/2.
        assert!((by_n.coupling_scale(0) - 0.125).abs() < 1e-12);
        assert!((by_deg.coupling_scale(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dde_path_with_constant_delay_still_synchronizes() {
        use pom_noise::ConstantDelay;
        use pom_ode::dde::{DdeRk4, InitialHistory};
        let model = PomBuilder::new(4)
            .topology(Topology::ring(4, &[-1, 1]))
            .potential(Potential::Tanh)
            .compute_time(1.0)
            .comm_time(0.0)
            .coupling(4.0)
            .interaction_noise(ConstantDelay::new(0.05))
            .build()
            .unwrap();
        assert!(model.has_delays());
        let solver = DdeRk4::new(0.01).unwrap();
        let init = InitialHistory::Constant(vec![0.0, 0.4, 0.1, 0.6]);
        let (traj, _) = solver.integrate(&model, 0.0, init, 120.0).unwrap();
        let last = traj.last().unwrap();
        let spread = last.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - last.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(
            spread < 0.02,
            "should resync despite small delay, spread {spread}"
        );
    }

    #[test]
    fn model_reports_shapes() {
        let model = PomBuilder::new(8)
            .topology(Topology::ring(8, &[-1, 1]))
            .potential(Potential::Tanh)
            .compute_time(0.5)
            .comm_time(0.5)
            .build()
            .unwrap();
        assert_eq!(OdeSystem::dim(&model), 8);
        assert_eq!(model.n(), 8);
        assert!(!model.has_delays());
        assert_eq!(model.max_delay(), 0.0);
        assert_eq!(model.potential().name(), "tanh");
    }
}
