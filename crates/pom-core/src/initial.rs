//! Initial conditions for model runs.
//!
//! The paper's tool "allows to set different initial conditions
//! (synchronized, desynchronized)" (§3.2). We add a seeded random spread
//! and fully custom phases.

use pom_noise::Xoshiro256pp;

/// Initial phase configuration.
#[derive(Debug, Clone, PartialEq)]
pub enum InitialCondition {
    /// All oscillators in phase at 0 (lockstep — the translationally
    /// symmetric state).
    Synchronized,
    /// A developed computational wavefront: `θ_i = i · slope`.
    Wavefront {
        /// Phase difference between adjacent ranks (radians).
        slope: f64,
    },
    /// Independent uniform phases in `[−amplitude/2, +amplitude/2]`,
    /// reproducibly seeded.
    RandomSpread {
        /// Total width of the uniform distribution (radians).
        amplitude: f64,
        /// RNG seed.
        seed: u64,
    },
    /// Explicit per-oscillator phases.
    Phases(Vec<f64>),
}

impl InitialCondition {
    /// Materialize the phase vector for `n` oscillators.
    ///
    /// # Panics
    /// Panics if an explicit [`InitialCondition::Phases`] vector has the
    /// wrong length.
    pub fn phases(&self, n: usize) -> Vec<f64> {
        match self {
            InitialCondition::Synchronized => vec![0.0; n],
            InitialCondition::Wavefront { slope } => (0..n).map(|i| i as f64 * slope).collect(),
            InitialCondition::RandomSpread { amplitude, seed } => {
                let mut rng = Xoshiro256pp::seeded(*seed);
                (0..n)
                    .map(|_| rng.uniform(-amplitude / 2.0, amplitude / 2.0))
                    .collect()
            }
            InitialCondition::Phases(p) => {
                assert_eq!(p.len(), n, "explicit phases have wrong length");
                p.clone()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synchronized_is_zero() {
        assert_eq!(InitialCondition::Synchronized.phases(4), vec![0.0; 4]);
    }

    #[test]
    fn wavefront_slope() {
        let p = InitialCondition::Wavefront { slope: 0.5 }.phases(4);
        assert_eq!(p, vec![0.0, 0.5, 1.0, 1.5]);
    }

    #[test]
    fn random_spread_reproducible_and_bounded() {
        let ic = InitialCondition::RandomSpread {
            amplitude: 2.0,
            seed: 9,
        };
        let a = ic.phases(32);
        let b = ic.phases(32);
        assert_eq!(a, b);
        assert!(a.iter().all(|&x| (-1.0..=1.0).contains(&x)));
        // Different seed, different draw.
        let c = InitialCondition::RandomSpread {
            amplitude: 2.0,
            seed: 10,
        }
        .phases(32);
        assert_ne!(a, c);
    }

    #[test]
    fn explicit_phases_pass_through() {
        let p = InitialCondition::Phases(vec![1.0, 2.0]).phases(2);
        assert_eq!(p, vec![1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "wrong length")]
    fn explicit_phases_length_checked() {
        InitialCondition::Phases(vec![1.0, 2.0]).phases(3);
    }
}
