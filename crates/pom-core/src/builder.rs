//! Validated construction of [`Pom`] models.

use std::fmt;
use std::sync::Arc;

use pom_kernels::par::ChunkPool;
use pom_noise::{InteractionNoise, LocalNoise, NoDelay, NoNoise};
use pom_topology::Topology;

use crate::kernel::RhsKernel;
use crate::model::{Normalization, Pom};
use crate::params::{PomParams, Protocol};
use crate::potential::Potential;

/// Construction errors.
#[derive(Debug, Clone, PartialEq)]
pub enum PomError {
    /// Topology size differs from the oscillator count.
    TopologySize {
        /// Oscillator count requested.
        n: usize,
        /// Size of the supplied topology.
        topo_n: usize,
    },
    /// A scalar parameter is out of range.
    BadParameter {
        /// Parameter name.
        name: &'static str,
        /// Offending value.
        value: f64,
    },
    /// No topology was supplied.
    MissingTopology,
}

impl fmt::Display for PomError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PomError::TopologySize { n, topo_n } => {
                write!(f, "topology has {topo_n} ranks but the model needs {n}")
            }
            PomError::BadParameter { name, value } => {
                write!(f, "parameter `{name}` = {value} is out of range")
            }
            PomError::MissingTopology => write!(f, "no topology supplied"),
        }
    }
}

impl std::error::Error for PomError {}

/// Builder for [`Pom`] (all parameters of paper Eq. 2).
///
/// ```
/// use pom_core::{PomBuilder, Potential};
/// use pom_topology::Topology;
///
/// let model = PomBuilder::new(40)
///     .topology(Topology::ring(40, &[-1, 1]))
///     .potential(Potential::desync(3.0))
///     .compute_time(1.0)
///     .comm_time(0.1)
///     .build()
///     .unwrap();
/// assert_eq!(model.n(), 40);
/// ```
pub struct PomBuilder {
    n: usize,
    t_comp: f64,
    t_comm: f64,
    protocol: Protocol,
    kappa: Option<f64>,
    coupling_override: Option<f64>,
    topology: Option<Topology>,
    potential: Potential,
    local_noise: Arc<dyn LocalNoise>,
    interaction_noise: Arc<dyn InteractionNoise>,
    normalization: Normalization,
    min_cycle_fraction: f64,
    kernel: RhsKernel,
    rhs_threads: usize,
}

impl PomBuilder {
    /// Start building a model of `n` oscillators. Defaults: `t_comp = 1`,
    /// `t_comm = 0.1`, eager protocol, `κ` derived from the topology
    /// (sum of distances, individual waits), tanh potential, no noise,
    /// `1/N` normalization.
    pub fn new(n: usize) -> Self {
        Self {
            n,
            t_comp: 1.0,
            t_comm: 0.1,
            protocol: Protocol::Eager,
            kappa: None,
            coupling_override: None,
            topology: None,
            potential: Potential::Tanh,
            local_noise: Arc::new(NoNoise),
            interaction_noise: Arc::new(NoDelay),
            normalization: Normalization::ByN,
            min_cycle_fraction: 1e-3,
            kernel: RhsKernel::Exact,
            rhs_threads: 1,
        }
    }

    /// Set the dependency topology `T_ij`.
    pub fn topology(mut self, topology: Topology) -> Self {
        self.topology = Some(topology);
        self
    }

    /// Set the interaction potential `V`.
    pub fn potential(mut self, potential: Potential) -> Self {
        self.potential = potential;
        self
    }

    /// Computation-phase duration `t_comp` (seconds).
    pub fn compute_time(mut self, t_comp: f64) -> Self {
        self.t_comp = t_comp;
        self
    }

    /// Communication-phase duration `t_comm` (seconds).
    pub fn comm_time(mut self, t_comm: f64) -> Self {
        self.t_comm = t_comm;
        self
    }

    /// Point-to-point protocol (β factor).
    pub fn protocol(mut self, protocol: Protocol) -> Self {
        self.protocol = protocol;
        self
    }

    /// Distance weight `κ`. When not set, derived from the topology via
    /// `pom_topology::kappa::kappa_of_topology` with individual waits.
    pub fn kappa(mut self, kappa: f64) -> Self {
        self.kappa = Some(kappa);
        self
    }

    /// Override the coupling strength `v_p` directly (ignores β and κ) —
    /// used by parameter sweeps like §5.1.1's βκ scan.
    pub fn coupling(mut self, vp: f64) -> Self {
        self.coupling_override = Some(vp);
        self
    }

    /// Process-local noise `ζ_i(t)`.
    pub fn local_noise(mut self, noise: impl LocalNoise + 'static) -> Self {
        self.local_noise = Arc::new(noise);
        self
    }

    /// Interaction (communication-delay) noise `τ_ij(t)`.
    pub fn interaction_noise(mut self, noise: impl InteractionNoise + 'static) -> Self {
        self.interaction_noise = Arc::new(noise);
        self
    }

    /// Coupling-sum normalization (paper: `1/N`).
    pub fn normalization(mut self, normalization: Normalization) -> Self {
        self.normalization = normalization;
        self
    }

    /// Right-hand-side kernel selection (default: [`RhsKernel::Exact`],
    /// the bitwise-reference path; see [`RhsKernel`] for the accuracy
    /// policy of the fast path).
    pub fn kernel(mut self, kernel: RhsKernel) -> Self {
        self.kernel = kernel;
        self
    }

    /// Threads a *single* RHS evaluation fans out over (default 1 =
    /// serial; 0 = all available cores). Complements — and composes with —
    /// the campaign-level parallelism of `pom-sweep`: use it when one
    /// large-`N` run must scale across cores. Chunking is by disjoint
    /// oscillator ranges, so results are bitwise identical for every
    /// thread count; below ~2k oscillators the evaluation stays inline
    /// because the fork–join hand-off would dominate.
    pub fn rhs_threads(mut self, threads: usize) -> Self {
        self.rhs_threads = threads;
        self
    }

    /// Validate and build.
    pub fn build(self) -> Result<Pom, PomError> {
        if self.n == 0 {
            return Err(PomError::BadParameter {
                name: "n",
                value: 0.0,
            });
        }
        if !(self.t_comp.is_finite() && self.t_comp > 0.0) {
            return Err(PomError::BadParameter {
                name: "t_comp",
                value: self.t_comp,
            });
        }
        if !(self.t_comm.is_finite() && self.t_comm >= 0.0) {
            return Err(PomError::BadParameter {
                name: "t_comm",
                value: self.t_comm,
            });
        }
        let topology = self.topology.ok_or(PomError::MissingTopology)?;
        if topology.n() != self.n {
            return Err(PomError::TopologySize {
                n: self.n,
                topo_n: topology.n(),
            });
        }
        if let Some(k) = self.kappa {
            if !(k.is_finite() && k >= 0.0) {
                return Err(PomError::BadParameter {
                    name: "kappa",
                    value: k,
                });
            }
        }
        if let Some(vp) = self.coupling_override {
            if !vp.is_finite() {
                return Err(PomError::BadParameter {
                    name: "coupling",
                    value: vp,
                });
            }
        }
        let kappa = self.kappa.unwrap_or_else(|| {
            pom_topology::kappa::kappa_of_topology(&topology, pom_topology::WaitMode::Individual)
        });
        let mut params = PomParams::new(self.n, self.t_comp, self.t_comm, self.protocol, kappa);
        params.coupling_override = self.coupling_override;
        let min_cycle = self.min_cycle_fraction * params.cycle_time();
        let threads = if self.rhs_threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            self.rhs_threads
        };
        // Only spawn pool threads for models that can ever dispatch to
        // them; below the inline threshold a pool would be pure OS-thread
        // churn (sweeps build one model per grid point).
        let pool_eligible = threads > 1 && self.n >= crate::model::MIN_PAR_ROWS;
        let stencil = topology.ring_stencil();
        let mut pom = Pom {
            params,
            topology,
            potential: self.potential,
            local_noise: self.local_noise,
            interaction_noise: self.interaction_noise,
            normalization: self.normalization,
            min_cycle,
            coupling_cache: Vec::new(),
            kernel: self.kernel,
            rhs_threads: threads,
            stencil,
            pool: pool_eligible.then(|| ChunkPool::new(threads)),
            split_scratch: Default::default(),
        };
        pom.coupling_cache = (0..pom.params.n)
            .map(|i| pom.compute_coupling_scale(i))
            .collect();
        Ok(pom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_kappa_derived_from_topology() {
        let m = PomBuilder::new(10)
            .topology(Topology::ring(10, &[-1, 1]))
            .build()
            .unwrap();
        assert_eq!(m.params().kappa, 2.0);
        // And for the wider stencil.
        let m = PomBuilder::new(10)
            .topology(Topology::ring(10, &[-2, -1, 1]))
            .build()
            .unwrap();
        assert_eq!(m.params().kappa, 4.0);
    }

    #[test]
    fn explicit_kappa_wins() {
        let m = PomBuilder::new(10)
            .topology(Topology::ring(10, &[-1, 1]))
            .kappa(7.0)
            .build()
            .unwrap();
        assert_eq!(m.params().kappa, 7.0);
    }

    #[test]
    fn rejects_missing_topology() {
        assert_eq!(
            PomBuilder::new(4).build().unwrap_err(),
            PomError::MissingTopology
        );
    }

    #[test]
    fn rejects_size_mismatch() {
        let err = PomBuilder::new(4)
            .topology(Topology::ring(5, &[-1, 1]))
            .build()
            .unwrap_err();
        assert_eq!(err, PomError::TopologySize { n: 4, topo_n: 5 });
    }

    #[test]
    fn rejects_bad_scalars() {
        let t = || Topology::ring(4, &[-1, 1]);
        assert!(matches!(
            PomBuilder::new(0).topology(t()).build(),
            Err(PomError::BadParameter { name: "n", .. })
        ));
        assert!(matches!(
            PomBuilder::new(4).topology(t()).compute_time(0.0).build(),
            Err(PomError::BadParameter { name: "t_comp", .. })
        ));
        assert!(matches!(
            PomBuilder::new(4).topology(t()).comm_time(-0.1).build(),
            Err(PomError::BadParameter { name: "t_comm", .. })
        ));
        assert!(matches!(
            PomBuilder::new(4).topology(t()).kappa(f64::NAN).build(),
            Err(PomError::BadParameter { name: "kappa", .. })
        ));
        assert!(matches!(
            PomBuilder::new(4)
                .topology(t())
                .coupling(f64::INFINITY)
                .build(),
            Err(PomError::BadParameter {
                name: "coupling",
                ..
            })
        ));
    }

    #[test]
    fn error_messages_readable() {
        let e = PomError::TopologySize { n: 4, topo_n: 5 };
        assert!(e.to_string().contains('4') && e.to_string().contains('5'));
        let e = PomError::BadParameter {
            name: "t_comp",
            value: -1.0,
        };
        assert!(e.to_string().contains("t_comp"));
        assert!(PomError::MissingTopology.to_string().contains("topology"));
    }

    #[test]
    fn zero_comm_time_is_legal() {
        // Pure-compute cycles (PISOLVER with negligible messages).
        let m = PomBuilder::new(4)
            .topology(Topology::ring(4, &[-1, 1]))
            .comm_time(0.0)
            .build()
            .unwrap();
        assert_eq!(m.params().t_comm, 0.0);
    }
}
