//! Preset configurations for the paper's Fig. 2 corner cases.
//!
//! Fig. 2 spans a 2×2 matrix: communication topology `d = ±1` (top row)
//! vs. `d = ±1, −2` (bottom row) × scalable (left column) vs. saturating
//! (right column) code. All four use N = 40 MPI processes (4 Meggie
//! sockets), an injected one-off delay on rank 5, and the corresponding
//! potential.

use pom_noise::{DelayEvent, OneOffDelays};
use pom_topology::Topology;

use crate::builder::{PomBuilder, PomError};
use crate::model::Pom;
use crate::params::Protocol;
use crate::potential::Potential;

/// The four corner cases of paper Fig. 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Fig2Panel {
    /// (a) scalable code, next-neighbor topology `d = ±1`.
    A,
    /// (b) bottlenecked code, `d = ±1`.
    B,
    /// (c) scalable code, `d = ±1, −2`.
    C,
    /// (d) bottlenecked code, `d = ±1, −2`.
    D,
}

impl Fig2Panel {
    /// All four panels in paper order.
    pub fn all() -> [Fig2Panel; 4] {
        [Fig2Panel::A, Fig2Panel::B, Fig2Panel::C, Fig2Panel::D]
    }

    /// The communication distance set of this panel.
    pub fn distances(self) -> &'static [i32] {
        match self {
            Fig2Panel::A | Fig2Panel::B => &[-1, 1],
            Fig2Panel::C | Fig2Panel::D => &[-2, -1, 1],
        }
    }

    /// Whether the code is resource-scalable (left column).
    pub fn scalable(self) -> bool {
        matches!(self, Fig2Panel::A | Fig2Panel::C)
    }

    /// The interaction potential of this panel.
    ///
    /// Bottlenecked panels use the desync potential; §5.2.2 correlates the
    /// interaction horizon σ inversely with communication stiffness, so
    /// the `d = ±1, −2` panel gets σ three times smaller — matching the
    /// paper's observed "threefold increase in the speed of delay
    /// propagation and a corresponding decrease in oscillator phase
    /// spread" from (b) to (d).
    pub fn potential(self) -> Potential {
        match self {
            Fig2Panel::A | Fig2Panel::C => Potential::Tanh,
            Fig2Panel::B => Potential::desync(SIGMA_B),
            Fig2Panel::D => Potential::desync(SIGMA_B / 3.0),
        }
    }

    /// Panel letter for labels.
    pub fn letter(self) -> char {
        match self {
            Fig2Panel::A => 'a',
            Fig2Panel::B => 'b',
            Fig2Panel::C => 'c',
            Fig2Panel::D => 'd',
        }
    }
}

/// Interaction horizon used for panel (b).
pub const SIGMA_B: f64 = 3.0;

/// Number of oscillators in the Fig. 2 runs (40 ranks on 4 Meggie
/// sockets, §4).
pub const FIG2_N: usize = 40;

/// Compute-phase duration used in the presets (seconds).
pub const FIG2_T_COMP: f64 = 0.9;

/// Communication-phase duration used in the presets (seconds).
pub const FIG2_T_COMM: f64 = 0.1;

/// Rank receiving the one-off delay (§5.1: "the 5th MPI process").
pub const FIG2_DELAY_RANK: usize = 5;

/// Human-readable parameter summary for a panel (used in reports).
pub fn fig2_params(panel: Fig2Panel) -> String {
    format!(
        "panel ({}): N = {FIG2_N}, d = {:?}, potential = {}, t_comp = {FIG2_T_COMP}, t_comm = {FIG2_T_COMM}",
        panel.letter(),
        panel.distances(),
        panel.potential().name(),
    )
}

/// The one-off delay injection shared by all panels: rank 5 performs
/// `extra_cycles` additional cycle-times of work starting at `t_start`.
pub fn fig2_injection(t_start: f64, extra_cycles: f64) -> OneOffDelays {
    let cycle = FIG2_T_COMP + FIG2_T_COMM;
    OneOffDelays::new(vec![DelayEvent {
        rank: FIG2_DELAY_RANK,
        t_start,
        duration: extra_cycles * cycle,
        extra: cycle, // doubles the period while active
    }])
}

/// Build the oscillator model for one Fig. 2 panel.
///
/// `with_injection` adds the rank-5 one-off delay at `t = 5` cycles,
/// lasting 3 cycles (the idle-wave launcher).
pub fn fig2_model(panel: Fig2Panel, with_injection: bool) -> Result<Pom, PomError> {
    let topology = Topology::ring(FIG2_N, panel.distances());
    // Calibration note: Eq. (2) normalizes the coupling sum by N, which
    // for a sparse ring at N = 40 makes idle waves ~20× slower (in cycles)
    // than in the MPI analog. The presets use degree normalization so one
    // model time unit corresponds to one compute–communicate cycle on
    // both substrates; the potential/topology structure is unchanged
    // (DESIGN.md §4 records this substitution).
    let mut b = PomBuilder::new(FIG2_N)
        .topology(topology)
        .potential(panel.potential())
        .compute_time(FIG2_T_COMP)
        .comm_time(FIG2_T_COMM)
        .protocol(Protocol::Eager)
        .normalization(crate::model::Normalization::ByDegree);
    if with_injection {
        let cycle = FIG2_T_COMP + FIG2_T_COMM;
        b = b.local_noise(fig2_injection(5.0 * cycle, 3.0));
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panels_cover_the_2x2_matrix() {
        assert_eq!(Fig2Panel::A.distances(), &[-1, 1]);
        assert_eq!(Fig2Panel::D.distances(), &[-2, -1, 1]);
        assert!(Fig2Panel::A.scalable());
        assert!(!Fig2Panel::B.scalable());
        assert!(Fig2Panel::C.scalable());
        assert!(!Fig2Panel::D.scalable());
        assert_eq!(Fig2Panel::all().len(), 4);
    }

    #[test]
    fn potentials_match_columns() {
        assert_eq!(Fig2Panel::A.potential().name(), "tanh");
        assert_eq!(Fig2Panel::C.potential().name(), "tanh");
        assert_eq!(Fig2Panel::B.potential(), Potential::desync(SIGMA_B));
        assert_eq!(Fig2Panel::D.potential(), Potential::desync(SIGMA_B / 3.0));
    }

    #[test]
    fn kappa_derived_from_distance_sets() {
        let a = fig2_model(Fig2Panel::A, false).unwrap();
        let d = fig2_model(Fig2Panel::D, false).unwrap();
        assert_eq!(a.params().kappa, 2.0); // |−1| + |1|
        assert_eq!(d.params().kappa, 4.0); // |−2| + |−1| + |1|
                                           // Stiffer communication ⇒ stronger coupling (faster waves, §5.1.1).
        assert!(d.params().coupling() > a.params().coupling());
    }

    #[test]
    fn injection_targets_rank_5() {
        let inj = fig2_injection(5.0, 3.0);
        assert_eq!(inj.events().len(), 1);
        assert_eq!(inj.events()[0].rank, FIG2_DELAY_RANK);
        assert!(inj.events()[0].duration > 0.0);
    }

    #[test]
    fn models_build_for_all_panels() {
        for p in Fig2Panel::all() {
            let m = fig2_model(p, true).unwrap();
            assert_eq!(m.n(), FIG2_N);
            let desc = fig2_params(p);
            assert!(desc.contains("N = 40"), "{desc}");
        }
    }
}
