//! Continuum (long-wavelength) limit of the oscillator model.
//!
//! Paper §6: "If a well-defined continuum limit of the model can be found,
//! it could be useful in hardware-software co-design …". This module
//! derives the leading transport coefficients of that limit.
//!
//! Linearizing Eq. (2) around the uniform-gradient state `θ_i = ω̄t + i·δ`
//! gives `ε̇_i = s·Σ_{d∈D} V'(dδ)·(ε_{i+d} − ε_i)` with the coupling
//! scale `s`. Expanding `ε_{i+d} ≈ ε + d·∂ε + (d²/2)·∂²ε` yields the
//! advection–diffusion equation
//!
//! ```text
//! ∂ε/∂t = c · ∂ε/∂x + D · ∂²ε/∂x²
//! c = s·Σ_d V'(dδ)·d          (drift: rank-space transport velocity)
//! D = s·Σ_d V'(dδ)·d²/2      (diffusion)
//! ```
//!
//! The signs tell the whole §5 story at a glance:
//!
//! * tanh, lockstep: `V'(0) > 0` ⇒ `D > 0` — perturbations *diffuse away*
//!   (resynchronization).
//! * desync, lockstep: `V'(0) < 0` ⇒ `D < 0` — **anti-diffusion**: the
//!   continuum problem is ill-posed, short wavelengths blow up fastest —
//!   exactly the symmetry-breaking instability (and why the emergent
//!   pattern is the zigzag mode `m = N/2`, see
//!   `pom_analysis::spectral`).
//! * desync at `δ = 2σ/3`: `V' > 0` again ⇒ the wavefront state is
//!   diffusive-stable.
//! * asymmetric stencils (`Σ d ≠ 0`): `c ≠ 0` — disturbances *advect*
//!   through rank space, the continuum image of the one-sided idle-wave
//!   transport measured in `repro_wave_speed`.

// Index-as-rank loops are intentional here (the index is the rank id).
#![allow(clippy::needless_range_loop)]

use crate::potential::Potential;

/// Leading transport coefficients of the continuum limit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransportCoefficients {
    /// Advection velocity `c` in ranks per unit time (positive = toward
    /// higher ranks).
    pub drift: f64,
    /// Diffusion coefficient `D` in ranks² per unit time. Negative means
    /// the state is unstable (anti-diffusion).
    pub diffusion: f64,
}

impl TransportCoefficients {
    /// `true` if the underlying uniform state is long-wavelength stable.
    pub fn stable(&self) -> bool {
        self.diffusion >= 0.0
    }
}

/// Transport coefficients around the uniform state with slope `delta` for
/// a ring/chain with distance set `distances` and per-neighbor coupling
/// scale `coupling_scale` (`v_p/N` in the paper's normalization,
/// `v_p/deg` for degree normalization).
pub fn transport_coefficients(
    potential: Potential,
    coupling_scale: f64,
    distances: &[i32],
    delta: f64,
) -> TransportCoefficients {
    let mut drift = 0.0;
    let mut diffusion = 0.0;
    for &d in distances {
        let vp = potential.derivative(d as f64 * delta);
        drift += vp * d as f64;
        diffusion += vp * (d as f64) * (d as f64) / 2.0;
    }
    TransportCoefficients {
        drift: coupling_scale * drift,
        diffusion: coupling_scale * diffusion,
    }
}

/// Quadratic-order prediction of the Fourier growth rate
/// `Re λ(q) ≈ −D·q²` — the continuum image of
/// `pom_core::stability::growth_rates`. Used by tests to verify the two
/// descriptions agree for small `q`.
pub fn growth_rate_smallq(coeffs: &TransportCoefficients, q: f64) -> f64 {
    -coeffs.diffusion * q * q
}

/// Nonlinear front-speed estimate for a *saturated* idle wave under a
/// bounded potential: far behind the front the pull on each next
/// oscillator saturates at `|V| = 1` per lagging neighbor, so the phase
/// deficit needed to "hand the wave on" (one natural period, 2π-scaled to
/// the detection threshold `eps`) is built up at rate `s · n_legs`,
/// giving
///
/// ```text
/// v_front ≈ s · Σ_{d in pulling legs} |d| / eps_cycles
/// ```
///
/// The estimate is deliberately coarse (the paper's own speed statements
/// are qualitative); the tests only pin the *scaling*: linear in `s`,
/// growing with the leg count.
pub fn front_speed_estimate(coupling_scale: f64, distances: &[i32], eps_cycles: f64) -> f64 {
    assert!(eps_cycles > 0.0);
    let reach: f64 = distances.iter().map(|d| d.unsigned_abs() as f64).sum();
    coupling_scale * reach / eps_cycles
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stability::growth_rates;

    const S: f64 = 0.5;

    #[test]
    fn tanh_lockstep_diffuses() {
        let c = transport_coefficients(Potential::Tanh, S, &[-1, 1], 0.0);
        assert_eq!(c.drift, 0.0, "symmetric stencil has no drift");
        assert!(c.diffusion > 0.0);
        assert!(c.stable());
        // V'(0) = 1: D = s·(1·1/2 + 1·1/2) = s.
        assert!((c.diffusion - S).abs() < 1e-12);
    }

    #[test]
    fn desync_lockstep_antidiffuses() {
        let pot = Potential::desync(3.0);
        let c = transport_coefficients(pot, S, &[-1, 1], 0.0);
        assert!(c.diffusion < 0.0, "short-range repulsion ⇒ anti-diffusion");
        assert!(!c.stable());
        // …but the developed wavefront is diffusive-stable again.
        let cw = transport_coefficients(pot, S, &[-1, 1], 2.0);
        assert!(cw.diffusion > 0.0);
        assert!(cw.stable());
    }

    #[test]
    fn asymmetric_stencil_advects() {
        let c = transport_coefficients(Potential::Tanh, S, &[-2, -1, 1], 0.0);
        // Σ d = −2 with V'(0) = 1 ⇒ drift = −2s (toward lower ranks — the
        // direction in which dependencies point).
        assert!((c.drift + 2.0 * S).abs() < 1e-12);
        assert!(c.diffusion > 0.0);
    }

    #[test]
    fn smallq_matches_discrete_growth_rates() {
        // The continuum −D·q² must agree with the exact discrete rates
        // for the longest wavelengths.
        for (pot, delta) in [
            (Potential::Tanh, 0.0),
            (Potential::desync(3.0), 0.0),
            (Potential::desync(3.0), 2.0),
        ] {
            let n = 128; // large ring ⇒ small q₁
            let distances = [-1, 1];
            let rates = growth_rates(pot, S, &distances, n, delta);
            let coeffs = transport_coefficients(pot, S, &distances, delta);
            for m in 1..4 {
                let q = std::f64::consts::TAU * m as f64 / n as f64;
                let exact = rates[m];
                let approx = growth_rate_smallq(&coeffs, q);
                assert!(
                    (exact - approx).abs() < 0.05 * exact.abs().max(1e-6),
                    "{} δ={delta} m={m}: exact {exact:.3e} vs continuum {approx:.3e}",
                    pot.name()
                );
            }
        }
    }

    #[test]
    fn front_speed_scales_linearly_in_coupling() {
        let v1 = front_speed_estimate(0.5, &[-1, 1], 1.0);
        let v2 = front_speed_estimate(1.0, &[-1, 1], 1.0);
        assert!((v2 - 2.0 * v1).abs() < 1e-12);
        // Wider stencil is faster.
        let vw = front_speed_estimate(0.5, &[-2, -1, 1], 1.0);
        assert!(vw > v1);
    }

    #[test]
    fn front_speed_tracks_measured_wave_speed_scaling() {
        // Empirical check against the measured model speeds from the
        // repro_wave_speed experiment (≈ 0.5·βκ ranks/cycle with degree
        // normalization, s = βκ/2 per neighbor): the estimate with
        // eps = 1 cycle is s·2/1 = βκ — same linear scaling, same order
        // of magnitude.
        let s = |beta_kappa: f64| beta_kappa / 2.0;
        for bk in [1.0, 2.0, 4.0] {
            let est = front_speed_estimate(s(bk), &[-1, 1], 2.0);
            let measured = 0.5 * bk; // repro_wave_speed fit
            assert!(
                est / measured > 0.5 && est / measured < 2.0,
                "βκ = {bk}: estimate {est} vs measured {measured}"
            );
        }
    }

    #[test]
    #[should_panic]
    fn front_speed_rejects_bad_eps() {
        front_speed_estimate(1.0, &[-1, 1], 0.0);
    }
}
