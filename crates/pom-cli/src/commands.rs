//! Subcommand implementations.

// Index-as-rank loops are intentional here (the index is the rank id).
#![allow(clippy::needless_range_loop)]

use std::fmt;
use std::fmt::Write as _;

use pom_analysis::{fig2_verdict, Welford};
use pom_core::{
    fig2_params, Fig2Panel, InitialCondition, NoObserver, Normalization, Pom, PomBuilder,
    PomEnsemble, Potential, RhsKernel, SimOptions, SolverChoice,
};
use pom_kernels::{scaling_curve, Kernel, SocketSpec};
use pom_noise::{DelayEvent, OneOffDelays, WhiteJitter};
use pom_sweep::{Campaign, ProgressSink, RunOptions, TeeSink};
use pom_topology::Topology;
use pom_viz::{ascii_chart, circle_ascii, gantt_ascii, phase_heatmap_ascii};

use crate::config::{Config, ConfigError};

/// CLI errors: configuration problems or failures in the underlying runs.
#[derive(Debug)]
pub enum CliError {
    /// Unknown subcommand.
    UnknownCommand(String),
    /// Bad `key=value` arguments.
    Config(ConfigError),
    /// A model/simulator run failed.
    Run(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::UnknownCommand(c) => {
                write!(f, "unknown command `{c}`; try `pom help`")
            }
            CliError::Config(e) => write!(f, "configuration error: {e}"),
            CliError::Run(msg) => write!(f, "run failed: {msg}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<ConfigError> for CliError {
    fn from(e: ConfigError) -> Self {
        CliError::Config(e)
    }
}

/// Top-level dispatch: `run_cli(["fig2", "panel=a"]) → report`.
pub fn run_cli<I, S>(args: I) -> Result<String, CliError>
where
    I: IntoIterator<Item = S>,
    S: AsRef<str>,
{
    let mut it = args.into_iter();
    let Some(cmd) = it.next() else {
        return Ok(help());
    };
    let rest: Vec<String> = it.map(|s| s.as_ref().to_string()).collect();
    // `sweep` takes the spec path as a positional argument; everything
    // else is strict `key=value`.
    let (positional, keyed): (Vec<String>, Vec<String>) = if cmd.as_ref() == "sweep" {
        rest.into_iter().partition(|a| !a.contains('='))
    } else {
        (Vec::new(), rest)
    };
    let cfg = Config::parse(&keyed)?;
    match cmd.as_ref() {
        "help" | "--help" | "-h" => Ok(help()),
        "potentials" => cmd_potentials(&cfg),
        "scaling" => cmd_scaling(&cfg),
        "fig2" => cmd_fig2(&cfg),
        "simulate" => cmd_simulate(&cfg),
        "sweep" => cmd_sweep(&positional, &cfg),
        "serve" => cmd_serve(&cfg),
        "wave-sweep" => cmd_wave_sweep(&cfg),
        "sigma-sweep" => cmd_sigma_sweep(&cfg),
        other => Err(CliError::UnknownCommand(other.to_string())),
    }
}

/// Usage text.
pub fn help() -> String {
    "pom — Physical Oscillator Model toolkit (arXiv:2310.05701 reproduction)\n\
     \n\
     USAGE: pom <command> [key=value ...]\n\
     \n\
     COMMANDS\n\
     \x20 potentials   [sigma=3 xmax=10 n=41]         Fig. 1(a) potential curves\n\
     \x20 scaling      [cores=10]                     Fig. 1(b) per-socket bandwidth scaling\n\
     \x20 fig2         panel=a|b|c|d                  one Fig. 2 corner case, model + simulator\n\
     \x20 simulate     [n=40 potential=tanh|desync|sin sigma=3 tcomp=0.9 tcomm=0.1\n\
     \x20               distances=-1,1 coupling=… t_end=120 init=sync|spread|wavefront\n\
     \x20               seed=7 noise=0 delay_rank=… delay_at=… delay_len=…\n\
     \x20               kernel=exact|sincos rhs-threads=1 observe=0|1 record-every=1\n\
     \x20               replicas=1 h=…]\n\
     \x20                                             parameterized model run with result views\n\
     \x20                                             (kernel= picks the RHS fast path, rhs-threads=\n\
     \x20                                             splits one large-N run across cores; 0 = all;\n\
     \x20                                             observe=1 streams observables online — O(N)\n\
     \x20                                             memory at any span, record-every= decimates;\n\
     \x20                                             replicas=R batches R seeded replicas in one\n\
     \x20                                             lockstep integration and reports mean/ci95\n\
     \x20                                             aggregates, h= picks the fixed RK4 step)\n\
     \x20 sweep        <spec.toml> [threads=0 out=… format=jsonl|csv resume=0|1 stats=0|1]\n\
     \x20                                             run a declarative scenario campaign on all\n\
     \x20                                             cores, streaming one result row per point\n\
     \x20                                             (stats=1 instruments the run and appends a\n\
     \x20                                             per-point latency summary: p50/p90/p99)\n\
     \x20 serve        [addr=127.0.0.1:7700 spool=pom-spool threads=0 max-jobs=16\n\
     \x20               max-conns=256 auth=tokens.toml read-timeout-ms=10000\n\
     \x20               write-timeout-ms=10000 retain=0 retain-age-s=0\n\
     \x20               log-level=debug|info|warn|error|off]\n\
     \x20                                             campaign daemon: submit specs over HTTP,\n\
     \x20                                             poll status, stream JSONL rows, cancel,\n\
     \x20                                             resume; crash-safe spool, SIGTERM drains;\n\
     \x20                                             GET /metrics exposes Prometheus text\n\
     \x20                                             (max-conns= bounds concurrent connections\n\
     \x20                                             — 503 past it; auth= turns on per-token\n\
     \x20                                             submit quotas — 401/429; read/write\n\
     \x20                                             timeouts drop stalled sockets; retain= /\n\
     \x20                                             retain-age-s= GC old spool directories;\n\
     \x20                                             submits take ?priority=high|normal|low\n\
     \x20                                             and ?deadline_ms=N)\n\
     \x20 wave-sweep   [n=40 t_end=80]                idle-wave speed vs. coupling βκ (§5.1.1)\n\
     \x20 sigma-sweep  [n=24 t_end=300]               phase gap vs. interaction horizon σ (§5.2.2)\n\
     \x20 help                                        this text\n"
        .to_string()
}

/// Fig. 1(a): sample both potentials (plus plain Kuramoto for contrast).
pub fn cmd_potentials(cfg: &Config) -> Result<String, CliError> {
    let sigma = cfg.f64_or("sigma", 3.0)?;
    let xmax = cfg.f64_or("xmax", 10.0)?;
    let n = cfg.usize_or("n", 41)?.max(5);
    let tanh = Potential::tanh();
    let desync = Potential::desync(sigma);
    let sin = Potential::KuramotoSin;

    let mut out = String::new();
    let _ = writeln!(out, "# Fig. 1(a): interaction potentials, sigma = {sigma}");
    let _ = writeln!(
        out,
        "{:>8}  {:>10}  {:>10}  {:>10}",
        "x", "tanh", "desync", "kuramoto"
    );
    for k in 0..n {
        let x = -xmax + 2.0 * xmax * k as f64 / (n - 1) as f64;
        let _ = writeln!(
            out,
            "{x:>8.3}  {:>10.5}  {:>10.5}  {:>10.5}",
            tanh.value(x),
            desync.value(x),
            sin.value(x)
        );
    }
    let _ = writeln!(
        out,
        "\nfirst zero of desync potential: {:.4} (= 2σ/3 = {:.4})",
        desync.stable_pair_separation(),
        2.0 * sigma / 3.0
    );
    let _ = writeln!(
        out,
        "lockstep stable under tanh: {}",
        tanh.lockstep_stable()
    );
    let _ = writeln!(
        out,
        "lockstep stable under desync: {}",
        desync.lockstep_stable()
    );
    Ok(out)
}

/// Fig. 1(b): per-socket scaling of the three paper kernels.
pub fn cmd_scaling(cfg: &Config) -> Result<String, CliError> {
    let socket = SocketSpec::meggie();
    let cores = cfg.usize_or("cores", socket.cores)?.max(1);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Fig. 1(b): memory bandwidth [MB/s] vs processes per Meggie socket"
    );
    let _ = writeln!(
        out,
        "{:>6}  {:>14}  {:>18}  {:>12}",
        "procs", "STREAM", "slow Schönauer", "PISOLVER"
    );
    let curves: Vec<Vec<f64>> = Kernel::paper_kernels()
        .iter()
        .map(|k| {
            scaling_curve(k, &socket, cores)
                .into_iter()
                .map(|p| p.aggregate_bw / 1e6)
                .collect()
        })
        .collect();
    for p in 0..cores {
        let _ = writeln!(
            out,
            "{:>6}  {:>14.0}  {:>18.0}  {:>12.0}",
            p + 1,
            curves[0][p],
            curves[1][p],
            curves[2][p]
        );
    }
    let sat = |k: &Kernel| {
        pom_kernels::saturation_point(k, &socket, 0.95)
            .map_or("never".to_string(), |c| format!("{c} cores"))
    };
    let _ = writeln!(
        out,
        "\nsaturation (95% of {:.0} GB/s):",
        socket.mem_bw / 1e9
    );
    let _ = writeln!(out, "  STREAM triad:    {}", sat(&Kernel::stream_triad()));
    let _ = writeln!(
        out,
        "  slow Schönauer:  {}",
        sat(&Kernel::schoenauer_slow())
    );
    let _ = writeln!(out, "  PISOLVER:        {}", sat(&Kernel::pisolver()));
    Ok(out)
}

/// One Fig. 2 corner case: joint model + simulator run with verdict.
pub fn cmd_fig2(cfg: &Config) -> Result<String, CliError> {
    let panel = match cfg.str_or("panel", "a").as_str() {
        "a" => Fig2Panel::A,
        "b" => Fig2Panel::B,
        "c" => Fig2Panel::C,
        "d" => Fig2Panel::D,
        other => {
            return Err(CliError::Config(ConfigError::BadValue {
                key: "panel".into(),
                value: other.into(),
                expected: "one of a, b, c, d",
            }))
        }
    };
    let v = fig2_verdict(panel);
    let mut out = String::new();
    let _ = writeln!(out, "# Fig. 2 {}", fig2_params(panel));
    let _ = writeln!(out, "model verdict:            {:?}", v.model);
    let _ = writeln!(out, "simulator verdict:        {:?}", v.sim);
    let _ = writeln!(
        out,
        "model wave speed:         {}",
        v.model_wave_speed
            .map_or("n/a".into(), |s| format!("{s:.3} ranks/unit"))
    );
    let _ = writeln!(
        out,
        "simulator wave speed:     {}",
        v.sim_wave_speed
            .map_or("n/a".into(), |s| format!("{s:.1} ranks/s"))
    );
    let _ = writeln!(
        out,
        "model residual spread:    {:.4} rad",
        v.model_residual_spread
    );
    let _ = writeln!(
        out,
        "model adjacent gap:       {:.4} rad",
        v.model_adjacent_gap
    );
    let _ = writeln!(
        out,
        "sim residual spread:      {:.3e} s",
        v.sim_residual_spread
    );
    let _ = writeln!(
        out,
        "paper expectation met:    {}",
        if v.agrees() { "YES" } else { "NO" }
    );
    Ok(out)
}

/// Fully parameterized model run — the MATLAB-app analog.
pub fn cmd_simulate(cfg: &Config) -> Result<String, CliError> {
    let n = cfg.usize_or("n", 40)?.max(2);
    let sigma = cfg.f64_or("sigma", 3.0)?;
    let potential = match cfg.str_or("potential", "tanh").as_str() {
        "tanh" => Potential::tanh(),
        "desync" => Potential::desync(sigma),
        "sin" | "kuramoto" => Potential::KuramotoSin,
        other => {
            return Err(CliError::Config(ConfigError::BadValue {
                key: "potential".into(),
                value: other.into(),
                expected: "tanh, desync or sin",
            }))
        }
    };
    let tcomp = cfg.f64_or("tcomp", 0.9)?;
    let tcomm = cfg.f64_or("tcomm", 0.1)?;
    let distances = cfg.i32_list_or("distances", &[-1, 1])?;
    let t_end = cfg.f64_or("t_end", 120.0)?;
    let seed = cfg.u64_or("seed", 7)?;
    let noise = cfg.f64_or("noise", 0.0)?;
    let topology = match cfg.str_or("topology", "ring").as_str() {
        "ring" => Topology::ring(n, &distances),
        "chain" => Topology::chain(n, &distances),
        "all" | "all-to-all" => Topology::all_to_all(n),
        other => {
            return Err(CliError::Config(ConfigError::BadValue {
                key: "topology".into(),
                value: other.into(),
                expected: "ring, chain or all-to-all",
            }))
        }
    };

    let kernel_name = cfg.str_or("kernel", "exact");
    let kernel = RhsKernel::from_name(&kernel_name).ok_or_else(|| {
        CliError::Config(ConfigError::BadValue {
            key: "kernel".into(),
            value: kernel_name.clone(),
            expected: "exact or sincos",
        })
    })?;
    // Accept the sweep-spec spelling too: a user copying `rhs_threads`
    // from a TOML spec must not get a silent serial run.
    let rhs_threads = if cfg.get("rhs-threads").is_some() {
        cfg.usize_or("rhs-threads", 1)?
    } else {
        cfg.usize_or("rhs_threads", 1)?
    };

    let replicas = cfg.usize_or("replicas", 1)?;
    if replicas == 0 {
        return Err(CliError::Config(ConfigError::BadValue {
            key: "replicas".into(),
            value: "0".into(),
            expected: "an integer ≥ 1",
        }));
    }

    let coupling = match cfg.get("coupling") {
        Some(vp) => Some(vp.parse::<f64>().map_err(|_| ConfigError::BadValue {
            key: "coupling".into(),
            value: vp.into(),
            expected: "a number",
        })?),
        None => None,
    };
    let kappa = match cfg.get("kappa") {
        Some(k) => Some(k.parse::<f64>().map_err(|_| ConfigError::BadValue {
            key: "kappa".into(),
            value: k.into(),
            expected: "a number",
        })?),
        None => None,
    };
    let delay = match cfg.get("delay_rank") {
        Some(rank) => {
            let rank: usize = rank.parse().map_err(|_| ConfigError::BadValue {
                key: "delay_rank".into(),
                value: rank.into(),
                expected: "a rank index",
            })?;
            Some((
                rank,
                cfg.f64_or("delay_at", 5.0)?,
                cfg.f64_or("delay_len", 3.0)?,
            ))
        }
        None => None,
    };

    // One member per replica seed; replica 0 uses the base seed verbatim
    // so `replicas=1` is exactly today's single run (same contract as the
    // sweep layer's `CampaignSpec::replica_seed`).
    let build_model = |rep_seed: u64| -> Result<Pom, CliError> {
        let mut b = PomBuilder::new(n)
            .topology(topology.clone())
            .potential(potential)
            .compute_time(tcomp)
            .comm_time(tcomm)
            .kernel(kernel)
            .rhs_threads(rhs_threads)
            .normalization(match cfg.str_or("norm", "degree").as_str() {
                "n" => Normalization::ByN,
                _ => Normalization::ByDegree,
            });
        if let Some(vp) = coupling {
            b = b.coupling(vp);
        }
        if let Some(k) = kappa {
            b = b.kappa(k);
        }
        // Noise and one-off delays.
        if let Some((rank, t_start, duration)) = delay {
            b = b.local_noise(OneOffDelays::new(vec![DelayEvent {
                rank,
                t_start,
                duration,
                extra: tcomp + tcomm,
            }]));
        } else if noise > 0.0 {
            b = b.local_noise(WhiteJitter::new(rep_seed, noise, (tcomp + tcomm) / 2.0));
        }
        b.build().map_err(|e| CliError::Run(e.to_string()))
    };

    let init_kind = cfg.str_or("init", "spread");
    let make_init = |rep_seed: u64| -> Result<InitialCondition, CliError> {
        Ok(match init_kind.as_str() {
            "sync" => InitialCondition::Synchronized,
            "spread" => InitialCondition::RandomSpread {
                amplitude: cfg.f64_or("amplitude", 1.0)?,
                seed: rep_seed,
            },
            "wavefront" => InitialCondition::Wavefront {
                slope: cfg.f64_or("slope", 0.5)?,
            },
            other => {
                return Err(CliError::Config(ConfigError::BadValue {
                    key: "init".into(),
                    value: other.into(),
                    expected: "sync, spread or wavefront",
                }))
            }
        })
    };

    if replicas > 1 {
        // Replicas only differ through a seeded source: a seeded spread
        // init or white jitter. Without one, R identical runs would
        // masquerade as statistics.
        if init_kind != "spread" && (noise <= 0.0 || delay.is_some()) {
            return Err(CliError::Run(
                "replicas > 1 needs a per-replica randomness source \
                 (init=spread or noise > 0); otherwise all replicas are identical"
                    .to_string(),
            ));
        }
        return simulate_ensemble_report(replicas, seed, &build_model, &make_init, t_end, cfg);
    }

    let model = build_model(seed)?;
    let init = make_init(seed)?;
    // Streaming mode (`observe=1 [record-every=k]`): run the observer
    // fast path instead of recording a trajectory — observables fold
    // online, memory stays O(N) however long the span, and the report is
    // the streamed summary (trajectory views don't exist here).
    if cfg.get("observe").is_some_and(|v| v != "0") {
        return simulate_observed_report(&model, init, t_end, cfg);
    }

    let run = model
        .simulate_with(
            init,
            &SimOptions::new(t_end).samples(cfg.usize_or("samples", 400)?),
        )
        .map_err(|e| CliError::Run(e.to_string()))?;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "# POM run: N = {n}, potential = {}, κ = {:.2}, v_p = {:.3}, t_end = {t_end}, \
         kernel = {} ({} rhs thread{})",
        model.potential().name(),
        model.params().kappa,
        model.params().coupling(),
        model.kernel().name(),
        model.rhs_threads(),
        if model.rhs_threads() == 1 { "" } else { "s" }
    );
    // Mirror of the observed path's ignored-flag notes: decimation only
    // exists on the streaming path.
    if cfg.get("record-every").is_some() {
        let _ = writeln!(
            out,
            "note: `record-every=` only applies with observe=1 and is ignored here"
        );
    }
    let _ = writeln!(
        out,
        "final order parameter r: {:.5}",
        run.final_order_parameter()
    );
    let _ = writeln!(
        out,
        "final phase spread:      {:.5} rad",
        run.final_phase_spread()
    );
    let _ = writeln!(
        out,
        "mean |adjacent gap|:     {:.5} rad",
        run.mean_abs_adjacent_gap()
    );

    match cfg.str_or("view", "order").as_str() {
        "circle" => {
            let _ = writeln!(out, "\ncircle diagram (final state, θ mod 2π):");
            out.push_str(&circle_ascii(run.trajectory().last().unwrap_or(&[]), 21));
        }
        "spread" => {
            out.push('\n');
            out.push_str(&ascii_chart(
                "phase spread over time",
                &run.phase_spread_series(),
                64,
                12,
            ));
        }
        "heatmap" => {
            let _ = writeln!(out, "\nrank × time heatmap (darker = ahead of the lagger):");
            out.push_str(&phase_heatmap_ascii(&run, 72));
        }
        _ => {
            out.push('\n');
            out.push_str(&ascii_chart(
                "order parameter r(t)",
                &run.order_parameter_series(),
                64,
                12,
            ));
        }
    }
    Ok(out)
}

/// The `simulate replicas=R` report: run an R-member lockstep ensemble
/// (one batched integration, replicas interleaved per oscillator row) and
/// print per-replica finals plus mean/ci95/min/max aggregates.
fn simulate_ensemble_report(
    replicas: usize,
    seed: u64,
    build_model: &dyn Fn(u64) -> Result<Pom, CliError>,
    make_init: &dyn Fn(u64) -> Result<InitialCondition, CliError>,
    t_end: f64,
    cfg: &Config,
) -> Result<String, CliError> {
    // Same derivation as `CampaignSpec::replica_seed`: replica 0 is the
    // base seed, higher replicas hash it with their index.
    let rep_seed = |rep: usize| {
        if rep == 0 {
            seed
        } else {
            pom_noise::SplitMix64::hash3(seed, rep as u64, 0x706f_6d2d_7265_706c)
        }
    };
    let members: Vec<Pom> = (0..replicas)
        .map(|rep| build_model(rep_seed(rep)))
        .collect::<Result<_, _>>()?;
    let inits: Vec<InitialCondition> = (0..replicas)
        .map(|rep| make_init(rep_seed(rep)))
        .collect::<Result<_, _>>()?;

    // `h=` opts into the lockstep fixed-step batch; without it the Auto
    // solver picks Dopri5 for no-delay models and the ensemble runs its
    // replicas sequentially (same results, less amortization).
    let mut opts = SimOptions::new(t_end);
    if let Some(h) = cfg.get("h") {
        let h: f64 = h.parse().map_err(|_| ConfigError::BadValue {
            key: "h".into(),
            value: h.into(),
            expected: "a positive step size",
        })?;
        if !(h.is_finite() && h > 0.0) {
            return Err(CliError::Config(ConfigError::BadValue {
                key: "h".into(),
                value: h.to_string(),
                expected: "a positive step size",
            }));
        }
        opts = opts.solver(SolverChoice::FixedRk4 { h });
    }

    let ensemble = PomEnsemble::new(members);
    let mut observers = vec![NoObserver; replicas];
    let summaries = ensemble
        .simulate_observed(&inits, &opts, &mut observers)
        .map_err(|e| CliError::Run(e.to_string()))?;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "# POM ensemble run: N = {}, R = {replicas} replicas, potential = {}, \
         κ = {:.2}, v_p = {:.3}, t_end = {t_end}",
        ensemble.n(),
        ensemble.members()[0].potential().name(),
        ensemble.members()[0].params().kappa,
        ensemble.members()[0].params().coupling(),
    );
    let _ = writeln!(
        out,
        "{:>8}  {:>12}  {:>14}  {:>14}",
        "replica", "final r", "spread [rad]", "mean |gap|"
    );
    let mut agg = [Welford::new(), Welford::new(), Welford::new()];
    for (rep, s) in summaries.iter().enumerate() {
        let scalars = [
            s.final_order_parameter(),
            s.final_phase_spread(),
            s.mean_abs_adjacent_gap(),
        ];
        for (w, v) in agg.iter_mut().zip(scalars) {
            w.push(v);
        }
        let _ = writeln!(
            out,
            "{rep:>8}  {:>12.5}  {:>14.5}  {:>14.5}",
            scalars[0], scalars[1], scalars[2]
        );
    }
    let _ = writeln!(
        out,
        "\naggregates over {replicas} replicas (mean ± ci95, [min, max]):"
    );
    for (name, w) in ["final r", "spread", "mean |gap|"].iter().zip(&agg) {
        let _ = writeln!(
            out,
            "{name:>12}: {:.5} ± {:.5}  [{:.5}, {:.5}]",
            w.mean(),
            w.ci95_half_width(),
            w.min(),
            w.max()
        );
    }
    Ok(out)
}

/// The `simulate observe=1` report: integrate through the streaming
/// observer fast path (no trajectory allocated) and print the online
/// observables.
fn simulate_observed_report(
    model: &pom_core::Pom,
    init: InitialCondition,
    t_end: f64,
    cfg: &Config,
) -> Result<String, CliError> {
    use pom_analysis::RunSummaryProbe;
    use pom_core::ObserveEvery;

    let every = cfg.usize_or("record-every", 1)?.max(1);
    let mut probe = ObserveEvery::new(RunSummaryProbe::new(), every);
    let summary = model
        .simulate_observed(init, &SimOptions::new(t_end), &mut probe)
        .map_err(|e| CliError::Run(e.to_string()))?;
    let steps = probe.steps_seen();
    let stats = probe.inner();

    let mut out = String::new();
    let _ = writeln!(
        out,
        "# POM observed run: N = {}, potential = {}, κ = {:.2}, v_p = {:.3}, t_end = {t_end}, \
         kernel = {}",
        model.n(),
        model.potential().name(),
        model.params().kappa,
        model.params().coupling(),
        model.kernel().name(),
    );
    // Trajectory-dependent flags have nothing to act on here; say so
    // instead of silently dropping an explicit request.
    for ignored in ["view", "samples"] {
        if cfg.get(ignored).is_some() {
            let _ = writeln!(
                out,
                "note: `{ignored}=` needs a recorded trajectory and is ignored under observe=1"
            );
        }
    }
    let _ = writeln!(
        out,
        "streamed: {steps} accepted steps, {} samples folded (record-every = {every}), \
         no trajectory allocated",
        stats.r.stats.count(),
    );
    let _ = writeln!(
        out,
        "\nfinal order parameter r: {:.5}",
        summary.final_order_parameter()
    );
    let _ = writeln!(
        out,
        "final phase spread:      {:.5} rad",
        summary.final_phase_spread()
    );
    let _ = writeln!(
        out,
        "mean |adjacent gap|:     {:.5} rad",
        summary.mean_abs_adjacent_gap()
    );
    let _ = writeln!(
        out,
        "\nstreamed r(t):      mean {:.5}, min {:.5}, max {:.5}, σ {:.3e}",
        stats.r.stats.mean(),
        stats.r.stats.min(),
        stats.r.stats.max(),
        stats.r.stats.std_dev()
    );
    let _ = writeln!(
        out,
        "streamed mean gap:  mean {:.5}, max {:.5} rad",
        stats.gaps.mean_gap.mean(),
        stats.gaps.mean_gap.max()
    );
    let _ = writeln!(
        out,
        "streamed max gap:   peak {:.5} rad",
        stats.gaps.max_gap.max()
    );
    let _ = writeln!(
        out,
        "streamed spread:    mean {:.5}, max {:.5} rad",
        stats.gaps.spread.mean(),
        stats.gaps.spread.max()
    );
    Ok(out)
}

/// `pom sweep <spec.toml>`: run a declarative campaign from a spec file.
pub fn cmd_sweep(positional: &[String], cfg: &Config) -> Result<String, CliError> {
    let spec_path = match (positional.first(), cfg.get("spec")) {
        (Some(p), _) => p.clone(),
        (None, Some(p)) => p.to_string(),
        (None, None) => {
            return Err(CliError::Run(
                "usage: pom sweep <spec.toml> [threads=0] [out=results.jsonl] \
                 [format=jsonl|csv] [resume=0|1]"
                    .to_string(),
            ))
        }
    };
    let campaign = Campaign::from_file(&spec_path).map_err(|e| CliError::Run(e.to_string()))?;
    let threads = cfg.usize_or("threads", 0)?;
    let resume = cfg.usize_or("resume", 0)? != 0;
    let format = cfg.str_or("format", "jsonl");
    let stats = cfg.usize_or("stats", 0)? != 0;
    if stats {
        // Opt-in instrumentation: per-point wall times land in the
        // registry histogram the summary below reads back.
        pom_obs::set_enabled(true);
    }

    // Resume state lives in the JSONL header's spec hash; silently
    // re-running a whole campaign instead would discard completed work.
    if resume && (cfg.get("out").is_none() || format != "jsonl") {
        return Err(CliError::Run(
            "resume=1 requires out=<file> with format=jsonl (only the JSONL stream \
             carries the spec hash and completed points)"
                .to_string(),
        ));
    }

    let summary = match cfg.get("out") {
        None => {
            // No output file: the report *is* the JSONL stream.
            let mut text = campaign
                .run_jsonl_string(threads)
                .map_err(|e| CliError::Run(e.to_string()))?;
            if stats {
                text.push_str(&sweep_stats_report());
            }
            return Ok(text);
        }
        Some(out_path) => {
            let mut progress = ProgressSink::new(campaign.total_points());
            match format.as_str() {
                "jsonl" => {
                    let (mut file_sink, opts) = campaign
                        .jsonl_file_sink(out_path, threads, resume)
                        .map_err(|e| CliError::Run(e.to_string()))?;
                    let mut tee = TeeSink::new(vec![&mut file_sink, &mut progress]);
                    campaign
                        .run(&opts, &mut tee)
                        .map_err(|e| CliError::Run(e.to_string()))?
                }
                "csv" => {
                    let file = std::fs::File::create(out_path)
                        .map_err(|e| CliError::Run(format!("create {out_path}: {e}")))?;
                    let mut sink = pom_sweep::CsvSink::new(file);
                    let mut tee = TeeSink::new(vec![&mut sink, &mut progress]);
                    campaign
                        .run(&RunOptions::with_threads(threads), &mut tee)
                        .map_err(|e| CliError::Run(e.to_string()))?
                }
                other => {
                    return Err(CliError::Config(ConfigError::BadValue {
                        key: "format".into(),
                        value: other.into(),
                        expected: "jsonl or csv",
                    }))
                }
            }
        }
    };

    let mut out = String::new();
    let _ = writeln!(out, "# campaign `{}`", campaign.spec.name);
    let _ = writeln!(out, "points:   {}", summary.total);
    let _ = writeln!(out, "executed: {}", summary.executed);
    let _ = writeln!(out, "skipped:  {} (resume cache)", summary.skipped);
    let _ = writeln!(out, "errors:   {}", summary.errors);
    if let Some(p) = cfg.get("out") {
        let _ = writeln!(out, "wrote {p}");
    }
    if stats {
        out.push_str(&sweep_stats_report());
    }
    Ok(out)
}

/// The `sweep stats=1` trailer: per-point wall-time quantiles read back
/// from the registry histogram the executor fills.
fn sweep_stats_report() -> String {
    let h = pom_obs::registry().histogram(
        pom_sweep::POINT_DURATION_METRIC,
        "Wall time of one executed sweep point.",
    );
    let mut out = String::new();
    let _ = writeln!(out, "# point latency ({} timed points)", h.count());
    if h.count() == 0 {
        let _ = writeln!(out, "no points executed (everything resumed from cache?)");
        return out;
    }
    let us = |v: Option<f64>| v.map_or("n/a".to_string(), |v| format!("{:.0} µs", v));
    let _ = writeln!(out, "mean: {}", us(h.mean()));
    let _ = writeln!(out, "p50:  {}", us(h.quantile(0.5)));
    let _ = writeln!(out, "p90:  {}", us(h.quantile(0.9)));
    let _ = writeln!(out, "p99:  {}", us(h.quantile(0.99)));
    let _ = writeln!(
        out,
        "max:  {}",
        h.max().map_or("n/a".to_string(), |v| format!("{v} µs"))
    );
    out
}

/// `pom serve`: run the campaign daemon until `POST /shutdown` or a
/// termination signal, then drain and report.
pub fn cmd_serve(cfg: &Config) -> Result<String, CliError> {
    let level_name = cfg.str_or("log-level", "warn");
    let level = pom_obs::Level::from_name(&level_name).ok_or_else(|| {
        CliError::Config(ConfigError::BadValue {
            key: "log-level".into(),
            value: level_name.clone(),
            expected: "debug, info, warn, error or off",
        })
    })?;
    pom_obs::set_log_level(level);
    let auth = match cfg.get("auth") {
        None => None,
        Some(path) => {
            Some(pom_serve::TokenBook::from_file(path).map_err(|e| CliError::Run(e.to_string()))?)
        }
    };
    let retain_age_s = cfg.u64_or("retain-age-s", 0)?;
    let config = pom_serve::ServeConfig {
        addr: cfg.str_or("addr", "127.0.0.1:7700"),
        spool: std::path::PathBuf::from(cfg.str_or("spool", "pom-spool")),
        threads: cfg.usize_or("threads", 0)?,
        max_jobs: cfg.usize_or("max-jobs", 16)?.max(1),
        max_conns: cfg.usize_or("max-conns", 256)?,
        auth,
        read_timeout: std::time::Duration::from_millis(cfg.u64_or("read-timeout-ms", 10_000)?),
        write_timeout: std::time::Duration::from_millis(cfg.u64_or("write-timeout-ms", 10_000)?),
        retain_count: cfg.usize_or("retain", 0)?,
        retain_age: (retain_age_s > 0).then(|| std::time::Duration::from_secs(retain_age_s)),
        faults: pom_serve::Faults::disabled(),
        handle_signals: true,
    };
    let spool = config.spool.display().to_string();
    let server = pom_serve::Server::start(config).map_err(|e| CliError::Run(e.to_string()))?;
    // The daemon blocks until shutdown; announce readiness immediately
    // instead of via the (post-shutdown) report string.
    println!("pom serve: listening on http://{}", server.addr());
    println!("pom serve: spool at {spool}; POST /shutdown or SIGTERM stops with a drain");
    let s = server.join();

    let mut out = String::new();
    let _ = writeln!(out, "# pom serve: drained and stopped");
    let _ = writeln!(
        out,
        "jobs: {} total — {} done, {} incomplete (auto-resume on restart), \
         {} cancelled, {} failed",
        s.jobs, s.done, s.running, s.cancelled, s.failed
    );
    let _ = writeln!(out, "rows written: {}", s.rows_written);
    Ok(out)
}

/// §5.1.1: idle-wave speed vs. coupling βκ in the model — a canned
/// campaign on the sweep engine.
pub fn cmd_wave_sweep(cfg: &Config) -> Result<String, CliError> {
    let n = cfg.usize_or("n", 40)?.max(8);
    let t_end = cfg.f64_or("t_end", 80.0)?;
    let spec = format!(
        r#"
        [campaign]
        name = "wave-sweep"
        observables = ["wave_speed", "wave_r2"]
        [model]
        n = {n}
        potential = "tanh"
        tcomp = 0.9
        tcomm = 0.1
        [topology]
        kind = "ring"
        [init]
        kind = "sync"
        [inject]
        rank = 5
        at = 2.0
        len = 3.0
        extra = 1.0
        [sim]
        t_end = {t_end}
        samples = 400
        [wave]
        threshold = 0.05
        [[axes]]
        key = "model.coupling"
        values = [0.5, 1.0, 2.0, 3.0, 4.0, 6.0, 8.0]
        "#
    );
    let campaign = Campaign::from_str(&spec).map_err(|e| CliError::Run(e.to_string()))?;
    let rows = campaign
        .run_collect(0)
        .map_err(|e| CliError::Run(e.to_string()))?;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Idle-wave speed vs βκ (model, tanh potential, ring ±1)"
    );
    let _ = writeln!(out, "{:>8}  {:>14}  {:>8}", "βκ", "speed [rk/u]", "R²");
    for row in &rows {
        if let Some(e) = &row.error {
            return Err(CliError::Run(e.clone()));
        }
        let bk = row.params[0].1.as_f64().unwrap_or(f64::NAN);
        let speed = row.observables[0].1;
        let r2 = row.observables[1].1;
        if speed.is_finite() && r2.is_finite() {
            let _ = writeln!(out, "{bk:>8.1}  {speed:>14.4}  {r2:>8.3}");
        } else {
            let _ = writeln!(out, "{bk:>8.1}  {:>14}  {:>8}", "no wave", "-");
        }
    }
    Ok(out)
}

/// §5.2.2: asymptotic adjacent phase gap vs interaction horizon σ — a
/// canned campaign on the sweep engine.
pub fn cmd_sigma_sweep(cfg: &Config) -> Result<String, CliError> {
    let n = cfg.usize_or("n", 24)?.max(4);
    let t_end = cfg.f64_or("t_end", 300.0)?;
    let spec = format!(
        r#"
        [campaign]
        name = "sigma-sweep"
        observables = ["mean_abs_gap", "rel_err_two_thirds"]
        [model]
        n = {n}
        potential = "desync"
        tcomp = 0.9
        tcomm = 0.1
        coupling = 4.0
        [topology]
        kind = "chain"
        [init]
        kind = "spread"
        amplitude = 0.2
        seed = 3
        [sim]
        t_end = {t_end}
        samples = 300
        [[axes]]
        key = "model.sigma"
        values = [0.5, 1.0, 2.0, 3.0, 4.0, 6.0]
        "#
    );
    let campaign = Campaign::from_str(&spec).map_err(|e| CliError::Run(e.to_string()))?;
    let rows = campaign
        .run_collect(0)
        .map_err(|e| CliError::Run(e.to_string()))?;

    let mut out = String::new();
    let _ = writeln!(out, "# Asymptotic |adjacent gap| vs σ (model, chain ±1)");
    let _ = writeln!(
        out,
        "{:>8}  {:>12}  {:>12}  {:>10}",
        "σ", "gap [rad]", "2σ/3", "rel.err"
    );
    for row in &rows {
        if let Some(e) = &row.error {
            return Err(CliError::Run(e.clone()));
        }
        let sigma = row.params[0].1.as_f64().unwrap_or(f64::NAN);
        let mean_gap = row.observables[0].1;
        let rel = row.observables[1].1;
        let expect = 2.0 * sigma / 3.0;
        let _ = writeln!(
            out,
            "{sigma:>8.1}  {mean_gap:>12.4}  {expect:>12.4}  {rel:>10.4}"
        );
    }
    Ok(out)
}

/// Render a small trace preview (used by `fig2` when trace=1).
#[allow(dead_code)]
fn trace_preview(trace: &pom_mpisim::SimTrace) -> String {
    gantt_ascii(trace, 72)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn help_lists_all_commands() {
        let h = help();
        for cmd in [
            "potentials",
            "scaling",
            "fig2",
            "simulate",
            "sweep",
            "serve",
            "wave-sweep",
            "sigma-sweep",
        ] {
            assert!(h.contains(cmd), "missing {cmd}");
        }
    }

    #[test]
    fn sweep_without_spec_reports_usage() {
        let e = run_cli(["sweep"]).unwrap_err();
        assert!(e.to_string().contains("usage"), "{e}");
    }

    #[test]
    fn sweep_resume_requires_jsonl_file_output() {
        // Without out= (and with format=csv) there is no spec-hash stream
        // to resume from; silently re-running everything would be worse
        // than an error.
        let spec = std::env::temp_dir().join(format!("pom-cli-rr-{}.toml", std::process::id()));
        std::fs::write(&spec, "[model]\nn = 4\n[sim]\nt_end = 2.0\nsamples = 5\n").unwrap();
        let e = run_cli(["sweep", spec.to_str().unwrap(), "resume=1"]).unwrap_err();
        assert!(e.to_string().contains("resume"), "{e}");
        let e = run_cli([
            "sweep",
            spec.to_str().unwrap(),
            "resume=1",
            "format=csv",
            "out=/tmp/x.csv",
        ])
        .unwrap_err();
        assert!(e.to_string().contains("jsonl"), "{e}");
        let _ = std::fs::remove_file(&spec);
    }

    #[test]
    fn sweep_runs_spec_file_and_streams_jsonl() {
        let spec = r#"
            [campaign]
            name = "cli-smoke"
            seed = 1
            observables = ["final_r"]
            [model]
            n = 4
            coupling = 6.0
            [sim]
            t_end = 5.0
            samples = 10
            [[axes]]
            key = "model.coupling"
            values = [4.0, 8.0]
        "#;
        let path = std::env::temp_dir().join(format!("pom-cli-sweep-{}.toml", std::process::id()));
        std::fs::write(&path, spec).unwrap();
        let out = run_cli(["sweep", path.to_str().unwrap()]).unwrap();
        // Header + 2 rows of JSONL.
        assert_eq!(out.lines().count(), 3, "{out}");
        assert!(out.lines().next().unwrap().contains("cli-smoke"));
        assert!(out.contains("\"final_r\""));
        // Positional and spec= forms agree.
        let keyed = run_cli(["sweep".to_string(), format!("spec={}", path.display())]).unwrap();
        assert_eq!(out, keyed);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn sweep_writes_and_resumes_file_output() {
        let spec = r#"
            [campaign]
            observables = ["final_spread"]
            [model]
            n = 4
            [sim]
            t_end = 4.0
            samples = 10
            [[axes]]
            key = "model.coupling"
            values = [2.0, 4.0, 6.0]
        "#;
        let dir = std::env::temp_dir();
        let spec_path = dir.join(format!("pom-cli-res-{}.toml", std::process::id()));
        let out_path = dir.join(format!("pom-cli-res-{}.jsonl", std::process::id()));
        std::fs::write(&spec_path, spec).unwrap();
        let _ = std::fs::remove_file(&out_path);

        let report = run_cli([
            "sweep".to_string(),
            spec_path.display().to_string(),
            format!("out={}", out_path.display()),
        ])
        .unwrap();
        assert!(report.contains("executed: 3"), "{report}");

        // Resuming a complete file executes nothing.
        let report = run_cli([
            "sweep".to_string(),
            spec_path.display().to_string(),
            format!("out={}", out_path.display()),
            "resume=1".to_string(),
        ])
        .unwrap();
        assert!(report.contains("executed: 0"), "{report}");
        assert!(report.contains("skipped:  3"), "{report}");
        let _ = std::fs::remove_file(&spec_path);
        let _ = std::fs::remove_file(&out_path);
    }

    #[test]
    fn sweep_stats_appends_latency_summary() {
        // stats=1 flips the global instrumentation switch on; any other
        // test observing metrics must tolerate that (they only read
        // their own registry entries, so this is safe).
        let spec = r#"
            [campaign]
            observables = ["final_r"]
            [model]
            n = 4
            [sim]
            t_end = 2.0
            samples = 5
            [[axes]]
            key = "model.coupling"
            values = [2.0, 4.0]
        "#;
        let path = std::env::temp_dir().join(format!("pom-cli-stats-{}.toml", std::process::id()));
        std::fs::write(&path, spec).unwrap();
        let out = run_cli(["sweep", path.to_str().unwrap(), "stats=1"]).unwrap();
        assert!(out.contains("# point latency"), "{out}");
        assert!(out.contains("p99:"), "{out}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn serve_rejects_bad_log_level() {
        let e = run_cli(["serve", "log-level=chatty"]).unwrap_err();
        assert!(e.to_string().contains("warn"), "{e}");
    }

    #[test]
    fn unknown_command_is_reported() {
        let e = run_cli(["frobnicate"]).unwrap_err();
        assert!(e.to_string().contains("frobnicate"));
    }

    #[test]
    fn empty_args_show_help() {
        let out = run_cli(Vec::<String>::new()).unwrap();
        assert!(out.contains("USAGE"));
    }

    #[test]
    fn potentials_reports_first_zero() {
        let out = run_cli(["potentials", "sigma=3"]).unwrap();
        assert!(out.contains("2.0000"), "{out}");
        assert!(out.contains("lockstep stable under tanh: true"));
        assert!(out.contains("lockstep stable under desync: false"));
    }

    #[test]
    fn scaling_shows_saturation_ordering() {
        let out = run_cli(["scaling"]).unwrap();
        assert!(out.contains("STREAM"));
        assert!(out.contains("PISOLVER:        never"));
    }

    #[test]
    fn simulate_tanh_synchronizes() {
        let out = run_cli([
            "simulate",
            "n=12",
            "potential=tanh",
            "coupling=6",
            "t_end=80",
            "init=spread",
            "view=order",
        ])
        .unwrap();
        // r printed with 5 decimals; after resync it is ≈ 1.
        assert!(
            out.contains("final order parameter r: 1.0000") || out.contains("r: 0.9999"),
            "{out}"
        );
    }

    #[test]
    fn simulate_desync_settles_at_two_thirds_sigma() {
        let out = run_cli([
            "simulate",
            "n=12",
            "potential=desync",
            "sigma=1.5",
            "topology=chain",
            "coupling=6",
            "t_end=300",
            "init=spread",
            "amplitude=0.1",
            "view=circle",
        ])
        .unwrap();
        let gap: f64 = out
            .lines()
            .find(|l| l.starts_with("mean |adjacent gap|"))
            .and_then(|l| l.split_whitespace().rev().nth(1).map(str::to_string))
            .and_then(|v| v.parse().ok())
            .expect("gap line present");
        assert!(
            (gap - 1.0).abs() < 0.02,
            "gap {gap} should be ≈ 2σ/3 = 1.0\n{out}"
        );
        assert!(out.contains("circle diagram"));
    }

    #[test]
    fn simulate_heatmap_view() {
        let out = run_cli([
            "simulate",
            "n=8",
            "potential=tanh",
            "coupling=4",
            "t_end=20",
            "delay_rank=3",
            "delay_at=2",
            "delay_len=2",
            "init=sync",
            "view=heatmap",
        ])
        .unwrap();
        assert!(out.contains("heatmap"), "{out}");
        // 8 oscillator rows rendered.
        assert!(out.lines().filter(|l| l.contains('|')).count() >= 8);
    }

    #[test]
    fn simulate_replicas_reports_aggregates() {
        let out = run_cli([
            "simulate",
            "n=10",
            "potential=tanh",
            "coupling=4",
            "t_end=20",
            "init=spread",
            "replicas=3",
            "h=0.05",
        ])
        .unwrap();
        assert!(out.contains("R = 3 replicas"), "{out}");
        // One row per replica plus the three aggregate lines.
        for rep in 0..3 {
            assert!(out.contains(&format!("\n{rep:>8}  ")), "{out}");
        }
        assert!(out.contains("aggregates over 3 replicas"), "{out}");
        assert!(out.contains("final r:"), "{out}");
    }

    #[test]
    fn simulate_replicas_validation() {
        let e = run_cli(["simulate", "replicas=0"]).unwrap_err();
        assert!(e.to_string().contains("replicas"), "{e}");
        // Deterministic setup: R identical replicas is an error, not fake
        // statistics.
        let e = run_cli(["simulate", "init=sync", "replicas=2", "t_end=5"]).unwrap_err();
        assert!(e.to_string().contains("identical"), "{e}");
        let e = run_cli(["simulate", "replicas=2", "h=-0.1", "t_end=5"]).unwrap_err();
        assert!(e.to_string().contains("step size"), "{e}");
        // Noise alone is a valid per-replica randomness source.
        let out = run_cli([
            "simulate",
            "n=8",
            "init=sync",
            "noise=0.05",
            "coupling=4",
            "replicas=2",
            "t_end=10",
            "h=0.1",
        ])
        .unwrap();
        assert!(out.contains("R = 2 replicas"), "{out}");
    }

    #[test]
    fn simulate_replica_zero_matches_single_run() {
        // The ensemble's replica 0 row must reproduce the plain run's
        // printed finals exactly (same seed, same solver).
        let singles: Vec<String> = ["7", "evens"]
            .iter()
            .map(|_| {
                run_cli([
                    "simulate",
                    "n=10",
                    "potential=tanh",
                    "coupling=4",
                    "t_end=20",
                    "init=spread",
                    "seed=7",
                    "replicas=2",
                    "h=0.05",
                ])
                .unwrap()
            })
            .collect();
        // Deterministic across invocations.
        assert_eq!(singles[0], singles[1]);
        let row0 = singles[0]
            .lines()
            .find(|l| l.trim_start().starts_with("0 "))
            .unwrap()
            .to_string();
        let r0: f64 = row0.split_whitespace().nth(1).unwrap().parse().unwrap();
        let plain = run_cli([
            "simulate",
            "n=10",
            "potential=tanh",
            "coupling=4",
            "t_end=20",
            "init=spread",
            "seed=7",
        ])
        .unwrap();
        let plain_r: f64 = plain
            .lines()
            .find(|l| l.starts_with("final order parameter r"))
            .and_then(|l| l.split_whitespace().last())
            .unwrap()
            .parse()
            .unwrap();
        // Printed at 5 decimals on both sides; solvers differ (fixed h vs
        // auto), so compare loosely — both runs converge to lockstep.
        assert!(
            (r0 - plain_r).abs() < 5e-3,
            "replica 0 r {r0} vs single-run r {plain_r}"
        );
    }

    #[test]
    fn simulate_rejects_bad_potential() {
        let e = run_cli(["simulate", "potential=quux"]).unwrap_err();
        assert!(e.to_string().contains("tanh"));
    }

    #[test]
    fn simulate_kernel_knobs() {
        // The split kernel reproduces the tanh-free sin dynamics within
        // the printed precision; the header reports the selection.
        let out = run_cli([
            "simulate",
            "n=12",
            "potential=desync",
            "sigma=1.5",
            "topology=chain",
            "coupling=6",
            "t_end=50",
            "init=spread",
            "amplitude=0.1",
            "kernel=sincos",
            "rhs-threads=2",
        ])
        .unwrap();
        assert!(out.contains("kernel = sincos (2 rhs threads)"), "{out}");
        // The sweep-spec spelling must not silently fall back to serial.
        let out = run_cli([
            "simulate",
            "n=8",
            "potential=tanh",
            "coupling=4",
            "t_end=10",
            "rhs_threads=3",
        ])
        .unwrap();
        assert!(out.contains("(3 rhs threads)"), "{out}");
        let e = run_cli(["simulate", "kernel=quux"]).unwrap_err();
        assert!(e.to_string().contains("sincos"), "{e}");
    }

    #[test]
    fn sigma_sweep_tracks_two_thirds_law() {
        let out = run_cli(["sigma-sweep", "n=12", "t_end=200"]).unwrap();
        // Every row's relative error column should be small; spot-check
        // that at least the σ=3 row is within 5%.
        let row = out
            .lines()
            .find(|l| l.trim_start().starts_with("3.0"))
            .unwrap();
        let rel: f64 = row.split_whitespace().last().unwrap().parse().unwrap();
        assert!(rel < 0.05, "σ=3 relative error {rel}: {out}");
    }

    #[test]
    fn wave_sweep_speed_increases_with_coupling() {
        let out = run_cli(["wave-sweep", "n=24", "t_end=60"]).unwrap();
        let speeds: Vec<f64> = out
            .lines()
            .filter_map(|l| {
                let cols: Vec<&str> = l.split_whitespace().collect();
                if cols.len() == 3 && cols[0].parse::<f64>().is_ok() {
                    cols[1].parse().ok()
                } else {
                    None
                }
            })
            .collect();
        assert!(speeds.len() >= 4, "{out}");
        assert!(
            speeds.last().unwrap() > speeds.first().unwrap(),
            "speed should grow with βκ: {speeds:?}"
        );
    }
}
