//! Command-line interface to the POM toolkit — the scriptable equivalent
//! of the paper's MATLAB application (§3.2).
//!
//! Subcommands (each takes `key=value` arguments, see [`config::Config`]):
//!
//! | command | reproduces |
//! |---------|------------|
//! | `potentials` | Fig. 1(a): the two interaction potentials |
//! | `scaling` | Fig. 1(b): per-socket bandwidth scaling of the three kernels |
//! | `fig2` | one corner case of Fig. 2 on both substrates |
//! | `simulate` | a fully parameterized oscillator-model run with the three result views |
//! | `serve` | the campaign daemon: HTTP job API over the sweep engine |
//! | `wave-sweep` | §5.1.1: idle-wave speed vs. coupling βκ |
//! | `sigma-sweep` | §5.2.2: asymptotic phase gap vs. interaction horizon σ |
//!
//! All command functions return the report as a `String` so they are
//! directly testable; the binary just prints.
//!
//! The sweep-shaped subcommands (`sweep`, `wave-sweep`, `sigma-sweep`)
//! delegate to the `pom-sweep` campaign engine: a self-balancing worker
//! pool whose workers each hold one reusable integrator workspace, with
//! per-point seeds derived from the point index so output is bitwise
//! identical for any `threads=` value.

pub mod commands;
pub mod config;

pub use commands::{run_cli, CliError};
pub use config::{Config, ConfigError};
