//! Command-line interface to the POM toolkit — the scriptable equivalent
//! of the paper's MATLAB application (§3.2).
//!
//! Every subcommand is declared once in the command registry
//! ([`pom_sweep::registry`]): the [`cmd`] dispatch table binds each
//! registry [`pom_sweep::registry::CommandSpec`] to a run function that
//! receives already-validated, typed arguments
//! ([`pom_sweep::registry::Parsed`]). Help text (`pom help`,
//! `pom help <command>`, `format=json|md`), "did you mean" suggestions,
//! and error wording are all generated from the registry — there is no
//! hand-written usage block in this crate.
//!
//! Subcommands (each takes `key=value` arguments):
//!
//! | command | reproduces |
//! |---------|------------|
//! | `potentials` | Fig. 1(a): the two interaction potentials |
//! | `scaling` | Fig. 1(b): per-socket bandwidth scaling of the three kernels |
//! | `fig2` | one corner case of Fig. 2 on both substrates |
//! | `simulate` | a fully parameterized oscillator-model run with the three result views |
//! | `sweep` | a declarative TOML/JSON campaign through the sweep engine |
//! | `serve` | the campaign daemon: HTTP job API over the sweep engine |
//! | `help` | the registry, rendered as text, JSON (≡ `GET /schema`) or markdown (≡ `docs/CLI.md`) |
//! | `wave-sweep` | §5.1.1: idle-wave speed vs. coupling βκ |
//! | `sigma-sweep` | §5.2.2: asymptotic phase gap vs. interaction horizon σ |
//!
//! All command functions return the report as a `String` so they are
//! directly testable; the binary just prints.
//!
//! The sweep-shaped subcommands (`sweep`, `wave-sweep`, `sigma-sweep`)
//! delegate to the `pom-sweep` campaign engine: a self-balancing worker
//! pool whose workers each hold one reusable integrator workspace, with
//! per-point seeds derived from the point index so output is bitwise
//! identical for any `threads=` value.

pub mod cmd;
pub mod config;

pub use cmd::{help, run_cli, CliError};
pub use config::{Config, ConfigError};
