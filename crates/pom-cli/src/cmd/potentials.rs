//! `pom potentials`: Fig. 1(a) — sample both potentials (plus plain
//! Kuramoto for contrast).

use std::fmt::Write as _;

use pom_core::Potential;
use pom_sweep::registry::Parsed;

use super::CliError;

pub fn run(p: &Parsed) -> Result<String, CliError> {
    let sigma = p.f64("sigma");
    let xmax = p.f64("xmax");
    let n = p.usize("n").max(5);
    let tanh = Potential::tanh();
    let desync = Potential::desync(sigma);
    let sin = Potential::KuramotoSin;

    let mut out = String::new();
    let _ = writeln!(out, "# Fig. 1(a): interaction potentials, sigma = {sigma}");
    let _ = writeln!(
        out,
        "{:>8}  {:>10}  {:>10}  {:>10}",
        "x", "tanh", "desync", "kuramoto"
    );
    for k in 0..n {
        let x = -xmax + 2.0 * xmax * k as f64 / (n - 1) as f64;
        let _ = writeln!(
            out,
            "{x:>8.3}  {:>10.5}  {:>10.5}  {:>10.5}",
            tanh.value(x),
            desync.value(x),
            sin.value(x)
        );
    }
    let _ = writeln!(
        out,
        "\nfirst zero of desync potential: {:.4} (= 2σ/3 = {:.4})",
        desync.stable_pair_separation(),
        2.0 * sigma / 3.0
    );
    let _ = writeln!(
        out,
        "lockstep stable under tanh: {}",
        tanh.lockstep_stable()
    );
    let _ = writeln!(
        out,
        "lockstep stable under desync: {}",
        desync.lockstep_stable()
    );
    Ok(out)
}
