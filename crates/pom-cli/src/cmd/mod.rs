//! Subcommand dispatch, generated from the command registry.
//!
//! Each submodule owns one command: it binds a [`CommandSpec`] from
//! [`pom_sweep::registry::defs`] to a `run(&Parsed) -> Result<String,
//! CliError>` function. The dispatcher below is the only list of that
//! binding, and [`commands`] is pinned against the registry by a
//! structural test — a command added to one side without the other
//! fails the build's test run, not a user at the terminal.

mod fig2;
mod help;
mod potentials;
mod scaling;
mod serve;
mod sigma_sweep;
mod simulate;
mod sweep;
mod wave_sweep;

use std::fmt;

use pom_sweep::registry::{toolkit, CommandSpec, Parsed};

use crate::config::ConfigError;

/// One command's entry point.
pub type RunFn = fn(&Parsed) -> Result<String, CliError>;

/// Every command: its registry spec next to its implementation. Order
/// matches the registry's help order (pinned by a test).
pub fn commands() -> &'static [(&'static CommandSpec, RunFn)] {
    use pom_sweep::registry::defs;
    &[
        (&defs::POTENTIALS, potentials::run),
        (&defs::SCALING, scaling::run),
        (&defs::FIG2, fig2::run),
        (&defs::SIMULATE, simulate::run),
        (&defs::SWEEP, sweep::run),
        (&defs::SERVE, serve::run),
        (&defs::WAVE_SWEEP, wave_sweep::run),
        (&defs::SIGMA_SWEEP, sigma_sweep::run),
        (&defs::HELP, help::run),
    ]
}

/// CLI errors: configuration problems or failures in the underlying runs.
#[derive(Debug)]
pub enum CliError {
    /// Unknown subcommand (with a "did you mean" when one is close).
    UnknownCommand {
        /// The command word as given.
        name: String,
        /// A registered command within edit distance 2, if any.
        suggestion: Option<&'static str>,
    },
    /// Bad `key=value` arguments, already rendered with the offending
    /// key's doc line ([`CommandSpec::explain`]).
    Args(String),
    /// Bad `key=value` arguments (semantic checks past the parser).
    Config(ConfigError),
    /// A model/simulator run failed.
    Run(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::UnknownCommand { name, suggestion } => {
                write!(f, "unknown command `{name}`")?;
                if let Some(s) = suggestion {
                    write!(f, "; did you mean `{s}`?")?;
                }
                write!(f, " try `pom help`")
            }
            CliError::Args(msg) => write!(f, "configuration error: {msg}"),
            CliError::Config(e) => write!(f, "configuration error: {e}"),
            CliError::Run(msg) => write!(f, "run failed: {msg}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<ConfigError> for CliError {
    fn from(e: ConfigError) -> Self {
        CliError::Config(e)
    }
}

/// Top-level dispatch: `run_cli(["fig2", "panel=a"]) → report`.
///
/// The command word selects a [`CommandSpec`]; its generic driver parses
/// the remaining words (positionals and `key=value`, any order) into a
/// typed table, and the command's `run` renders the report. Parse
/// errors carry the registry's explanation (offending key plus its doc
/// line); an unknown command suggests the nearest registered one.
pub fn run_cli<I, S>(args: I) -> Result<String, CliError>
where
    I: IntoIterator<Item = S>,
    S: AsRef<str>,
{
    let mut it = args.into_iter();
    let Some(cmd) = it.next() else {
        return Ok(help());
    };
    let cmd = cmd.as_ref();
    let rest: Vec<String> = it.map(|s| s.as_ref().to_string()).collect();
    let Some((spec, run)) = commands()
        .iter()
        .find(|(s, _)| s.name == cmd || s.aliases.contains(&cmd))
    else {
        return Err(CliError::UnknownCommand {
            name: cmd.to_string(),
            suggestion: toolkit().suggest_command(cmd),
        });
    };
    let parsed = spec
        .parse(&rest)
        .map_err(|e| CliError::Args(spec.explain(&e)))?;
    run(&parsed)
}

/// The full usage text, generated from the registry.
pub fn help() -> String {
    toolkit().help()
}
