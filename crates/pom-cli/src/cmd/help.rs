//! `pom help [command] [format=text|json|md]`.

use pom_sweep::registry::{toolkit, Parsed};

use super::CliError;

pub fn run(p: &Parsed) -> Result<String, CliError> {
    let reg = toolkit();
    match p.str("format") {
        // The machine-readable registry — byte-identical to the body the
        // daemon serves at GET /schema (both render `Registry::schema_json`).
        "json" => Ok(format!("{}\n", reg.schema_json())),
        // The docs/CLI.md source; the `help_sync` test pins the committed
        // file against this output.
        "md" => Ok(reg.markdown()),
        _ => match p.opt_str("command") {
            Some(name) => match reg.command(name) {
                Some(c) => Ok(c.help_page()),
                None => Err(CliError::UnknownCommand {
                    name: name.to_string(),
                    suggestion: reg.suggest_command(name),
                }),
            },
            None => Ok(reg.help()),
        },
    }
}
