//! `pom scaling`: Fig. 1(b) — per-socket scaling of the three paper
//! kernels.

use std::fmt::Write as _;

use pom_kernels::{scaling_curve, Kernel, SocketSpec};
use pom_sweep::registry::Parsed;

use super::CliError;

// Index-as-rank loop is intentional (the index is the process count).
#[allow(clippy::needless_range_loop)]
pub fn run(p: &Parsed) -> Result<String, CliError> {
    let socket = SocketSpec::meggie();
    let cores = if p.is_given("cores") {
        p.usize("cores").max(1)
    } else {
        socket.cores
    };
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Fig. 1(b): memory bandwidth [MB/s] vs processes per Meggie socket"
    );
    let _ = writeln!(
        out,
        "{:>6}  {:>14}  {:>18}  {:>12}",
        "procs", "STREAM", "slow Schönauer", "PISOLVER"
    );
    let curves: Vec<Vec<f64>> = Kernel::paper_kernels()
        .iter()
        .map(|k| {
            scaling_curve(k, &socket, cores)
                .into_iter()
                .map(|pt| pt.aggregate_bw / 1e6)
                .collect()
        })
        .collect();
    for proc in 0..cores {
        let _ = writeln!(
            out,
            "{:>6}  {:>14.0}  {:>18.0}  {:>12.0}",
            proc + 1,
            curves[0][proc],
            curves[1][proc],
            curves[2][proc]
        );
    }
    let sat = |k: &Kernel| {
        pom_kernels::saturation_point(k, &socket, 0.95)
            .map_or("never".to_string(), |c| format!("{c} cores"))
    };
    let _ = writeln!(
        out,
        "\nsaturation (95% of {:.0} GB/s):",
        socket.mem_bw / 1e9
    );
    let _ = writeln!(out, "  STREAM triad:    {}", sat(&Kernel::stream_triad()));
    let _ = writeln!(
        out,
        "  slow Schönauer:  {}",
        sat(&Kernel::schoenauer_slow())
    );
    let _ = writeln!(out, "  PISOLVER:        {}", sat(&Kernel::pisolver()));
    Ok(out)
}
