//! `pom sigma-sweep`: §5.2.2 — asymptotic adjacent phase gap vs
//! interaction horizon σ, a canned campaign on the sweep engine.

use std::fmt::Write as _;

use pom_sweep::registry::Parsed;
use pom_sweep::Campaign;

use super::CliError;

pub fn run(p: &Parsed) -> Result<String, CliError> {
    let n = p.usize("n").max(4);
    let t_end = p.f64("t_end");
    let spec = format!(
        r#"
        [campaign]
        name = "sigma-sweep"
        observables = ["mean_abs_gap", "rel_err_two_thirds"]
        [model]
        n = {n}
        potential = "desync"
        tcomp = 0.9
        tcomm = 0.1
        coupling = 4.0
        [topology]
        kind = "chain"
        [init]
        kind = "spread"
        amplitude = 0.2
        seed = 3
        [sim]
        t_end = {t_end}
        samples = 300
        [[axes]]
        key = "model.sigma"
        values = [0.5, 1.0, 2.0, 3.0, 4.0, 6.0]
        "#
    );
    let campaign = Campaign::from_str(&spec).map_err(|e| CliError::Run(e.to_string()))?;
    let rows = campaign
        .run_collect(0)
        .map_err(|e| CliError::Run(e.to_string()))?;

    let mut out = String::new();
    let _ = writeln!(out, "# Asymptotic |adjacent gap| vs σ (model, chain ±1)");
    let _ = writeln!(
        out,
        "{:>8}  {:>12}  {:>12}  {:>10}",
        "σ", "gap [rad]", "2σ/3", "rel.err"
    );
    for row in &rows {
        if let Some(e) = &row.error {
            return Err(CliError::Run(e.clone()));
        }
        let sigma = row.params[0].1.as_f64().unwrap_or(f64::NAN);
        let mean_gap = row.observables[0].1;
        let rel = row.observables[1].1;
        let expect = 2.0 * sigma / 3.0;
        let _ = writeln!(
            out,
            "{sigma:>8.1}  {mean_gap:>12.4}  {expect:>12.4}  {rel:>10.4}"
        );
    }
    Ok(out)
}
