//! `pom simulate`: fully parameterized model run — the MATLAB-app
//! analog — with the trajectory views, the streaming observer path
//! (`observe=1`), and the lockstep ensemble path (`replicas=R`).

use std::fmt::Write as _;

use pom_analysis::Welford;
use pom_core::{
    InitialCondition, NoObserver, Normalization, Pom, PomBuilder, PomEnsemble, Potential,
    RhsKernel, SimOptions, SolverChoice,
};
use pom_noise::{DelayEvent, OneOffDelays, WhiteJitter};
use pom_sweep::registry::Parsed;
use pom_topology::Topology;
use pom_viz::{ascii_chart, circle_ascii, phase_heatmap_ascii};

use super::CliError;
use crate::config::ConfigError;

pub fn run(p: &Parsed) -> Result<String, CliError> {
    let n = p.usize("n").max(2);
    let sigma = p.f64("sigma");
    let potential = match p.str("potential") {
        "tanh" => Potential::tanh(),
        "desync" => Potential::desync(sigma),
        "sin" | "kuramoto" => Potential::KuramotoSin,
        other => unreachable!("enum-checked potential `{other}`"),
    };
    let tcomp = p.f64("tcomp");
    let tcomm = p.f64("tcomm");
    let distances = p.ints("distances").to_vec();
    let t_end = p.f64("t_end");
    let seed = p.u64("seed");
    let noise = p.f64("noise");
    let topology = match p.str("topology") {
        "ring" => Topology::ring(n, &distances),
        "chain" => Topology::chain(n, &distances),
        "all" | "all-to-all" => Topology::all_to_all(n),
        other => unreachable!("enum-checked topology `{other}`"),
    };

    let kernel = RhsKernel::from_name(p.str("kernel"))
        .unwrap_or_else(|| unreachable!("enum-checked kernel `{}`", p.str("kernel")));
    // The registry folds the sweep-spec spelling `rhs_threads` into the
    // canonical key, so a user copying from a TOML spec cannot get a
    // silent serial run.
    let rhs_threads = p.usize("rhs-threads");

    let replicas = p.usize("replicas");
    if replicas == 0 {
        return Err(CliError::Config(ConfigError::BadValue {
            key: "replicas".into(),
            value: "0".into(),
            expected: "an integer ≥ 1",
        }));
    }

    let coupling = p.opt_f64("coupling");
    let kappa = p.opt_f64("kappa");
    let delay = p
        .opt_usize("delay_rank")
        .map(|rank| (rank, p.f64("delay_at"), p.f64("delay_len")));

    let norm = match p.str("norm") {
        "n" => Normalization::ByN,
        _ => Normalization::ByDegree,
    };

    // One member per replica seed; replica 0 uses the base seed verbatim
    // so `replicas=1` is exactly today's single run (same contract as the
    // sweep layer's `CampaignSpec::replica_seed`).
    let build_model = |rep_seed: u64| -> Result<Pom, CliError> {
        let mut b = PomBuilder::new(n)
            .topology(topology.clone())
            .potential(potential)
            .compute_time(tcomp)
            .comm_time(tcomm)
            .kernel(kernel)
            .rhs_threads(rhs_threads)
            .normalization(norm);
        if let Some(vp) = coupling {
            b = b.coupling(vp);
        }
        if let Some(k) = kappa {
            b = b.kappa(k);
        }
        // Noise and one-off delays.
        if let Some((rank, t_start, duration)) = delay {
            b = b.local_noise(OneOffDelays::new(vec![DelayEvent {
                rank,
                t_start,
                duration,
                extra: tcomp + tcomm,
            }]));
        } else if noise > 0.0 {
            b = b.local_noise(WhiteJitter::new(rep_seed, noise, (tcomp + tcomm) / 2.0));
        }
        b.build().map_err(|e| CliError::Run(e.to_string()))
    };

    let init_kind = p.str("init");
    let make_init = |rep_seed: u64| -> InitialCondition {
        match init_kind {
            "sync" => InitialCondition::Synchronized,
            "wavefront" => InitialCondition::Wavefront {
                slope: p.f64("slope"),
            },
            _ => InitialCondition::RandomSpread {
                amplitude: p.f64("amplitude"),
                seed: rep_seed,
            },
        }
    };

    if replicas > 1 {
        // Replicas only differ through a seeded source: a seeded spread
        // init or white jitter. Without one, R identical runs would
        // masquerade as statistics.
        if init_kind != "spread" && (noise <= 0.0 || delay.is_some()) {
            return Err(CliError::Run(
                "replicas > 1 needs a per-replica randomness source \
                 (init=spread or noise > 0); otherwise all replicas are identical"
                    .to_string(),
            ));
        }
        return ensemble_report(replicas, seed, &build_model, &make_init, t_end, p);
    }

    let model = build_model(seed)?;
    let init = make_init(seed);
    // Streaming mode (`observe=1 [record-every=k]`): run the observer
    // fast path instead of recording a trajectory — observables fold
    // online, memory stays O(N) however long the span, and the report is
    // the streamed summary (trajectory views don't exist here).
    if p.bool("observe") {
        return observed_report(&model, init, t_end, p);
    }

    let run = model
        .simulate_with(init, &SimOptions::new(t_end).samples(p.usize("samples")))
        .map_err(|e| CliError::Run(e.to_string()))?;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "# POM run: N = {n}, potential = {}, κ = {:.2}, v_p = {:.3}, t_end = {t_end}, \
         kernel = {} ({} rhs thread{})",
        model.potential().name(),
        model.params().kappa,
        model.params().coupling(),
        model.kernel().name(),
        model.rhs_threads(),
        if model.rhs_threads() == 1 { "" } else { "s" }
    );
    // Mirror of the observed path's ignored-flag notes: decimation only
    // exists on the streaming path.
    if p.is_given("record-every") {
        let _ = writeln!(
            out,
            "note: `record-every=` only applies with observe=1 and is ignored here"
        );
    }
    let _ = writeln!(
        out,
        "final order parameter r: {:.5}",
        run.final_order_parameter()
    );
    let _ = writeln!(
        out,
        "final phase spread:      {:.5} rad",
        run.final_phase_spread()
    );
    let _ = writeln!(
        out,
        "mean |adjacent gap|:     {:.5} rad",
        run.mean_abs_adjacent_gap()
    );

    match p.str("view") {
        "circle" => {
            let _ = writeln!(out, "\ncircle diagram (final state, θ mod 2π):");
            out.push_str(&circle_ascii(run.trajectory().last().unwrap_or(&[]), 21));
        }
        "spread" => {
            out.push('\n');
            out.push_str(&ascii_chart(
                "phase spread over time",
                &run.phase_spread_series(),
                64,
                12,
            ));
        }
        "heatmap" => {
            let _ = writeln!(out, "\nrank × time heatmap (darker = ahead of the lagger):");
            out.push_str(&phase_heatmap_ascii(&run, 72));
        }
        _ => {
            out.push('\n');
            out.push_str(&ascii_chart(
                "order parameter r(t)",
                &run.order_parameter_series(),
                64,
                12,
            ));
        }
    }
    Ok(out)
}

/// The `simulate replicas=R` report: run an R-member lockstep ensemble
/// (one batched integration, replicas interleaved per oscillator row) and
/// print per-replica finals plus mean/ci95/min/max aggregates.
fn ensemble_report(
    replicas: usize,
    seed: u64,
    build_model: &dyn Fn(u64) -> Result<Pom, CliError>,
    make_init: &dyn Fn(u64) -> InitialCondition,
    t_end: f64,
    p: &Parsed,
) -> Result<String, CliError> {
    // Same derivation as `CampaignSpec::replica_seed`: replica 0 is the
    // base seed, higher replicas hash it with their index.
    let rep_seed = |rep: usize| {
        if rep == 0 {
            seed
        } else {
            pom_noise::SplitMix64::hash3(seed, rep as u64, 0x706f_6d2d_7265_706c)
        }
    };
    let members: Vec<Pom> = (0..replicas)
        .map(|rep| build_model(rep_seed(rep)))
        .collect::<Result<_, _>>()?;
    let inits: Vec<InitialCondition> = (0..replicas).map(|rep| make_init(rep_seed(rep))).collect();

    // `h=` opts into the lockstep fixed-step batch; without it the Auto
    // solver picks Dopri5 for no-delay models and the ensemble runs its
    // replicas sequentially (same results, less amortization).
    let mut opts = SimOptions::new(t_end);
    if let Some(h) = p.opt_f64("h") {
        if !(h.is_finite() && h > 0.0) {
            return Err(CliError::Config(ConfigError::BadValue {
                key: "h".into(),
                value: h.to_string(),
                expected: "a positive step size",
            }));
        }
        opts = opts.solver(SolverChoice::FixedRk4 { h });
    }

    let ensemble = PomEnsemble::new(members);
    let mut observers = vec![NoObserver; replicas];
    let summaries = ensemble
        .simulate_observed(&inits, &opts, &mut observers)
        .map_err(|e| CliError::Run(e.to_string()))?;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "# POM ensemble run: N = {}, R = {replicas} replicas, potential = {}, \
         κ = {:.2}, v_p = {:.3}, t_end = {t_end}",
        ensemble.n(),
        ensemble.members()[0].potential().name(),
        ensemble.members()[0].params().kappa,
        ensemble.members()[0].params().coupling(),
    );
    let _ = writeln!(
        out,
        "{:>8}  {:>12}  {:>14}  {:>14}",
        "replica", "final r", "spread [rad]", "mean |gap|"
    );
    let mut agg = [Welford::new(), Welford::new(), Welford::new()];
    for (rep, s) in summaries.iter().enumerate() {
        let scalars = [
            s.final_order_parameter(),
            s.final_phase_spread(),
            s.mean_abs_adjacent_gap(),
        ];
        for (w, v) in agg.iter_mut().zip(scalars) {
            w.push(v);
        }
        let _ = writeln!(
            out,
            "{rep:>8}  {:>12.5}  {:>14.5}  {:>14.5}",
            scalars[0], scalars[1], scalars[2]
        );
    }
    let _ = writeln!(
        out,
        "\naggregates over {replicas} replicas (mean ± ci95, [min, max]):"
    );
    for (name, w) in ["final r", "spread", "mean |gap|"].iter().zip(&agg) {
        let _ = writeln!(
            out,
            "{name:>12}: {:.5} ± {:.5}  [{:.5}, {:.5}]",
            w.mean(),
            w.ci95_half_width(),
            w.min(),
            w.max()
        );
    }
    Ok(out)
}

/// The `simulate observe=1` report: integrate through the streaming
/// observer fast path (no trajectory allocated) and print the online
/// observables.
fn observed_report(
    model: &Pom,
    init: InitialCondition,
    t_end: f64,
    p: &Parsed,
) -> Result<String, CliError> {
    use pom_analysis::RunSummaryProbe;
    use pom_core::ObserveEvery;

    let every = p.usize("record-every").max(1);
    let mut probe = ObserveEvery::new(RunSummaryProbe::new(), every);
    let summary = model
        .simulate_observed(init, &SimOptions::new(t_end), &mut probe)
        .map_err(|e| CliError::Run(e.to_string()))?;
    let steps = probe.steps_seen();
    let stats = probe.inner();

    let mut out = String::new();
    let _ = writeln!(
        out,
        "# POM observed run: N = {}, potential = {}, κ = {:.2}, v_p = {:.3}, t_end = {t_end}, \
         kernel = {}",
        model.n(),
        model.potential().name(),
        model.params().kappa,
        model.params().coupling(),
        model.kernel().name(),
    );
    // Trajectory-dependent flags have nothing to act on here; say so
    // instead of silently dropping an explicit request.
    for ignored in ["view", "samples"] {
        if p.is_given(ignored) {
            let _ = writeln!(
                out,
                "note: `{ignored}=` needs a recorded trajectory and is ignored under observe=1"
            );
        }
    }
    let _ = writeln!(
        out,
        "streamed: {steps} accepted steps, {} samples folded (record-every = {every}), \
         no trajectory allocated",
        stats.r.stats.count(),
    );
    let _ = writeln!(
        out,
        "\nfinal order parameter r: {:.5}",
        summary.final_order_parameter()
    );
    let _ = writeln!(
        out,
        "final phase spread:      {:.5} rad",
        summary.final_phase_spread()
    );
    let _ = writeln!(
        out,
        "mean |adjacent gap|:     {:.5} rad",
        summary.mean_abs_adjacent_gap()
    );
    let _ = writeln!(
        out,
        "\nstreamed r(t):      mean {:.5}, min {:.5}, max {:.5}, σ {:.3e}",
        stats.r.stats.mean(),
        stats.r.stats.min(),
        stats.r.stats.max(),
        stats.r.stats.std_dev()
    );
    let _ = writeln!(
        out,
        "streamed mean gap:  mean {:.5}, max {:.5} rad",
        stats.gaps.mean_gap.mean(),
        stats.gaps.mean_gap.max()
    );
    let _ = writeln!(
        out,
        "streamed max gap:   peak {:.5} rad",
        stats.gaps.max_gap.max()
    );
    let _ = writeln!(
        out,
        "streamed spread:    mean {:.5}, max {:.5} rad",
        stats.gaps.spread.mean(),
        stats.gaps.spread.max()
    );
    Ok(out)
}
