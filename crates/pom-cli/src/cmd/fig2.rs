//! `pom fig2`: one Fig. 2 corner case — joint model + simulator run
//! with verdict.

use std::fmt::Write as _;

use pom_analysis::fig2_verdict;
use pom_core::{fig2_params, Fig2Panel};
use pom_sweep::registry::Parsed;

use super::CliError;

pub fn run(p: &Parsed) -> Result<String, CliError> {
    let panel = match p.str("panel") {
        "a" => Fig2Panel::A,
        "b" => Fig2Panel::B,
        "c" => Fig2Panel::C,
        "d" => Fig2Panel::D,
        other => unreachable!("enum-checked panel `{other}`"),
    };
    let v = fig2_verdict(panel);
    let mut out = String::new();
    let _ = writeln!(out, "# Fig. 2 {}", fig2_params(panel));
    let _ = writeln!(out, "model verdict:            {:?}", v.model);
    let _ = writeln!(out, "simulator verdict:        {:?}", v.sim);
    let _ = writeln!(
        out,
        "model wave speed:         {}",
        v.model_wave_speed
            .map_or("n/a".into(), |s| format!("{s:.3} ranks/unit"))
    );
    let _ = writeln!(
        out,
        "simulator wave speed:     {}",
        v.sim_wave_speed
            .map_or("n/a".into(), |s| format!("{s:.1} ranks/s"))
    );
    let _ = writeln!(
        out,
        "model residual spread:    {:.4} rad",
        v.model_residual_spread
    );
    let _ = writeln!(
        out,
        "model adjacent gap:       {:.4} rad",
        v.model_adjacent_gap
    );
    let _ = writeln!(
        out,
        "sim residual spread:      {:.3e} s",
        v.sim_residual_spread
    );
    let _ = writeln!(
        out,
        "paper expectation met:    {}",
        if v.agrees() { "YES" } else { "NO" }
    );
    Ok(out)
}
