//! `pom serve`: run the campaign daemon until `POST /shutdown` or a
//! termination signal, then drain and report.

use std::fmt::Write as _;

use pom_sweep::registry::Parsed;

use super::CliError;

pub fn run(p: &Parsed) -> Result<String, CliError> {
    let level = pom_obs::Level::from_name(p.str("log-level"))
        .unwrap_or_else(|| unreachable!("enum-checked log-level `{}`", p.str("log-level")));
    pom_obs::set_log_level(level);
    let auth = match p.opt_str("auth") {
        None => None,
        Some(path) => {
            Some(pom_serve::TokenBook::from_file(path).map_err(|e| CliError::Run(e.to_string()))?)
        }
    };
    let retain_age_s = p.u64("retain-age-s");
    let config = pom_serve::ServeConfig {
        addr: p.str("addr").to_string(),
        spool: std::path::PathBuf::from(p.str("spool")),
        threads: p.usize("threads"),
        max_jobs: p.usize("max-jobs").max(1),
        max_conns: p.usize("max-conns"),
        auth,
        read_timeout: std::time::Duration::from_millis(p.u64("read-timeout-ms")),
        write_timeout: std::time::Duration::from_millis(p.u64("write-timeout-ms")),
        retain_count: p.usize("retain"),
        retain_age: (retain_age_s > 0).then(|| std::time::Duration::from_secs(retain_age_s)),
        faults: pom_serve::Faults::disabled(),
        handle_signals: true,
    };
    let spool = config.spool.display().to_string();
    let server = pom_serve::Server::start(config).map_err(|e| CliError::Run(e.to_string()))?;
    // The daemon blocks until shutdown; announce readiness immediately
    // instead of via the (post-shutdown) report string.
    println!("pom serve: listening on http://{}", server.addr());
    println!("pom serve: spool at {spool}; POST /shutdown or SIGTERM stops with a drain");
    let s = server.join();

    let mut out = String::new();
    let _ = writeln!(out, "# pom serve: drained and stopped");
    let _ = writeln!(
        out,
        "jobs: {} total — {} done, {} incomplete (auto-resume on restart), \
         {} cancelled, {} failed",
        s.jobs, s.done, s.running, s.cancelled, s.failed
    );
    let _ = writeln!(out, "rows written: {}", s.rows_written);
    Ok(out)
}
