//! `pom wave-sweep`: §5.1.1 — idle-wave speed vs. coupling βκ in the
//! model, a canned campaign on the sweep engine.

use std::fmt::Write as _;

use pom_sweep::registry::Parsed;
use pom_sweep::Campaign;

use super::CliError;

pub fn run(p: &Parsed) -> Result<String, CliError> {
    let n = p.usize("n").max(8);
    let t_end = p.f64("t_end");
    let spec = format!(
        r#"
        [campaign]
        name = "wave-sweep"
        observables = ["wave_speed", "wave_r2"]
        [model]
        n = {n}
        potential = "tanh"
        tcomp = 0.9
        tcomm = 0.1
        [topology]
        kind = "ring"
        [init]
        kind = "sync"
        [inject]
        rank = 5
        at = 2.0
        len = 3.0
        extra = 1.0
        [sim]
        t_end = {t_end}
        samples = 400
        [wave]
        threshold = 0.05
        [[axes]]
        key = "model.coupling"
        values = [0.5, 1.0, 2.0, 3.0, 4.0, 6.0, 8.0]
        "#
    );
    let campaign = Campaign::from_str(&spec).map_err(|e| CliError::Run(e.to_string()))?;
    let rows = campaign
        .run_collect(0)
        .map_err(|e| CliError::Run(e.to_string()))?;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Idle-wave speed vs βκ (model, tanh potential, ring ±1)"
    );
    let _ = writeln!(out, "{:>8}  {:>14}  {:>8}", "βκ", "speed [rk/u]", "R²");
    for row in &rows {
        if let Some(e) = &row.error {
            return Err(CliError::Run(e.clone()));
        }
        let bk = row.params[0].1.as_f64().unwrap_or(f64::NAN);
        let speed = row.observables[0].1;
        let r2 = row.observables[1].1;
        if speed.is_finite() && r2.is_finite() {
            let _ = writeln!(out, "{bk:>8.1}  {speed:>14.4}  {r2:>8.3}");
        } else {
            let _ = writeln!(out, "{bk:>8.1}  {:>14}  {:>8}", "no wave", "-");
        }
    }
    Ok(out)
}
