//! `pom sweep <spec.toml>`: run a declarative campaign from a spec
//! file, streaming JSONL/CSV rows.

use std::fmt::Write as _;

use pom_sweep::registry::Parsed;
use pom_sweep::{Campaign, ProgressSink, RunOptions, TeeSink};

use super::CliError;

pub fn run(p: &Parsed) -> Result<String, CliError> {
    let spec_path = p.str("spec");
    let campaign = Campaign::from_file(spec_path).map_err(|e| CliError::Run(e.to_string()))?;
    let threads = p.usize("threads");
    let resume = p.bool("resume");
    let format = p.str("format");
    let stats = p.bool("stats");
    if stats {
        // Opt-in instrumentation: per-point wall times land in the
        // registry histogram the summary below reads back.
        pom_obs::set_enabled(true);
    }

    // Resume state lives in the JSONL header's spec hash; silently
    // re-running a whole campaign instead would discard completed work.
    if resume && (p.opt_str("out").is_none() || format != "jsonl") {
        return Err(CliError::Run(
            "resume=1 requires out=<file> with format=jsonl (only the JSONL stream \
             carries the spec hash and completed points)"
                .to_string(),
        ));
    }

    let summary = match p.opt_str("out") {
        None => {
            // No output file: the report *is* the JSONL stream.
            let mut text = campaign
                .run_jsonl_string(threads)
                .map_err(|e| CliError::Run(e.to_string()))?;
            if stats {
                text.push_str(&stats_report());
            }
            return Ok(text);
        }
        Some(out_path) => {
            let mut progress = ProgressSink::new(campaign.total_points());
            match format {
                "csv" => {
                    let file = std::fs::File::create(out_path)
                        .map_err(|e| CliError::Run(format!("create {out_path}: {e}")))?;
                    let mut sink = pom_sweep::CsvSink::new(file);
                    let mut tee = TeeSink::new(vec![&mut sink, &mut progress]);
                    campaign
                        .run(&RunOptions::with_threads(threads), &mut tee)
                        .map_err(|e| CliError::Run(e.to_string()))?
                }
                _ => {
                    let (mut file_sink, opts) = campaign
                        .jsonl_file_sink(out_path, threads, resume)
                        .map_err(|e| CliError::Run(e.to_string()))?;
                    let mut tee = TeeSink::new(vec![&mut file_sink, &mut progress]);
                    campaign
                        .run(&opts, &mut tee)
                        .map_err(|e| CliError::Run(e.to_string()))?
                }
            }
        }
    };

    let mut out = String::new();
    let _ = writeln!(out, "# campaign `{}`", campaign.spec.name);
    let _ = writeln!(out, "points:   {}", summary.total);
    let _ = writeln!(out, "executed: {}", summary.executed);
    let _ = writeln!(out, "skipped:  {} (resume cache)", summary.skipped);
    let _ = writeln!(out, "errors:   {}", summary.errors);
    if let Some(path) = p.opt_str("out") {
        let _ = writeln!(out, "wrote {path}");
    }
    if stats {
        out.push_str(&stats_report());
    }
    Ok(out)
}

/// The `sweep stats=1` trailer: per-point wall-time quantiles read back
/// from the registry histogram the executor fills.
fn stats_report() -> String {
    let h = pom_obs::registry().histogram(
        pom_sweep::POINT_DURATION_METRIC,
        "Wall time of one executed sweep point.",
    );
    let mut out = String::new();
    let _ = writeln!(out, "# point latency ({} timed points)", h.count());
    if h.count() == 0 {
        let _ = writeln!(out, "no points executed (everything resumed from cache?)");
        return out;
    }
    let us = |v: Option<f64>| v.map_or("n/a".to_string(), |v| format!("{:.0} µs", v));
    let _ = writeln!(out, "mean: {}", us(h.mean()));
    let _ = writeln!(out, "p50:  {}", us(h.quantile(0.5)));
    let _ = writeln!(out, "p90:  {}", us(h.quantile(0.9)));
    let _ = writeln!(out, "p99:  {}", us(h.quantile(0.99)));
    let _ = writeln!(
        out,
        "max:  {}",
        h.max().map_or("n/a".to_string(), |v| format!("{v} µs"))
    );
    out
}
