//! `pom` — the command-line front end (see `pom help`).

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match pom_cli::run_cli(args) {
        Ok(report) => {
            print!("{report}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("pom: {e}");
            ExitCode::FAILURE
        }
    }
}
