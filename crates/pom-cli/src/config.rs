//! `key=value` run configuration — the scriptable analog of the paper's
//! "fully parameterized" MATLAB GUI.
//!
//! Example: `pom simulate n=40 potential=desync sigma=3 tcomp=0.9
//! tcomm=0.1 distances=-1,1 t_end=120 init=sync view=circle`.

use std::collections::BTreeMap;
use std::fmt;

/// Configuration errors with the offending key for actionable messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// An argument was not of the form `key=value`.
    Malformed(String),
    /// A key appeared twice.
    Duplicate(String),
    /// A required key is missing.
    Missing(&'static str),
    /// A value failed to parse.
    BadValue {
        /// The key.
        key: String,
        /// The raw value.
        value: String,
        /// What was expected.
        expected: &'static str,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::Malformed(arg) => write!(f, "`{arg}` is not of the form key=value"),
            ConfigError::Duplicate(key) => write!(f, "key `{key}` given twice"),
            ConfigError::Missing(key) => write!(f, "missing required key `{key}`"),
            ConfigError::BadValue {
                key,
                value,
                expected,
            } => {
                write!(f, "`{key}={value}`: expected {expected}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Parsed `key=value` arguments.
#[derive(Debug, Clone, Default)]
pub struct Config {
    values: BTreeMap<String, String>,
}

impl Config {
    /// Parse a list of `key=value` strings.
    pub fn parse<I, S>(args: I) -> Result<Self, ConfigError>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut values = BTreeMap::new();
        for arg in args {
            let arg = arg.as_ref();
            let Some((k, v)) = arg.split_once('=') else {
                return Err(ConfigError::Malformed(arg.to_string()));
            };
            if values
                .insert(k.trim().to_string(), v.trim().to_string())
                .is_some()
            {
                return Err(ConfigError::Duplicate(k.to_string()));
            }
        }
        Ok(Self { values })
    }

    /// Raw lookup.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    /// All keys (for unknown-key diagnostics).
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.values.keys().map(String::as_str)
    }

    /// `f64` with default.
    pub fn f64_or(&self, key: &'static str, default: f64) -> Result<f64, ConfigError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| ConfigError::BadValue {
                key: key.into(),
                value: v.into(),
                expected: "a number",
            }),
        }
    }

    /// `usize` with default.
    pub fn usize_or(&self, key: &'static str, default: usize) -> Result<usize, ConfigError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| ConfigError::BadValue {
                key: key.into(),
                value: v.into(),
                expected: "a non-negative integer",
            }),
        }
    }

    /// `u64` with default.
    pub fn u64_or(&self, key: &'static str, default: u64) -> Result<u64, ConfigError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| ConfigError::BadValue {
                key: key.into(),
                value: v.into(),
                expected: "a non-negative integer",
            }),
        }
    }

    /// String with default.
    pub fn str_or(&self, key: &str, default: &str) -> String {
        self.get(key).unwrap_or(default).to_string()
    }

    /// Comma-separated signed integers (e.g. `distances=-2,-1,1`).
    pub fn i32_list_or(&self, key: &'static str, default: &[i32]) -> Result<Vec<i32>, ConfigError> {
        match self.get(key) {
            None => Ok(default.to_vec()),
            Some(v) => v
                .split(',')
                .map(|p| {
                    p.trim().parse().map_err(|_| ConfigError::BadValue {
                        key: key.into(),
                        value: v.into(),
                        expected: "comma-separated integers",
                    })
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_key_values() {
        let c = Config::parse(["n=40", "sigma=3.0", "distances=-1,1"]).unwrap();
        assert_eq!(c.get("n"), Some("40"));
        assert_eq!(c.usize_or("n", 0).unwrap(), 40);
        assert_eq!(c.f64_or("sigma", 0.0).unwrap(), 3.0);
        assert_eq!(c.i32_list_or("distances", &[]).unwrap(), vec![-1, 1]);
    }

    #[test]
    fn defaults_apply() {
        let c = Config::parse(Vec::<String>::new()).unwrap();
        assert_eq!(c.f64_or("tcomp", 0.9).unwrap(), 0.9);
        assert_eq!(c.usize_or("n", 40).unwrap(), 40);
        assert_eq!(c.str_or("potential", "tanh"), "tanh");
        assert_eq!(c.i32_list_or("distances", &[-1, 1]).unwrap(), vec![-1, 1]);
    }

    #[test]
    fn whitespace_tolerated() {
        let c = Config::parse(["n = 7"]).unwrap();
        assert_eq!(c.usize_or("n", 0).unwrap(), 7);
    }

    #[test]
    fn errors_are_specific() {
        assert_eq!(
            Config::parse(["oops"]).unwrap_err(),
            ConfigError::Malformed("oops".into())
        );
        assert_eq!(
            Config::parse(["a=1", "a=2"]).unwrap_err(),
            ConfigError::Duplicate("a".into())
        );
        let c = Config::parse(["n=abc"]).unwrap();
        assert!(matches!(
            c.usize_or("n", 0),
            Err(ConfigError::BadValue { .. })
        ));
        let c = Config::parse(["distances=1,x"]).unwrap();
        assert!(c.i32_list_or("distances", &[]).is_err());
    }

    #[test]
    fn error_messages_name_the_key() {
        let e = ConfigError::BadValue {
            key: "sigma".into(),
            value: "x".into(),
            expected: "a number",
        };
        assert!(e.to_string().contains("sigma"));
        assert!(ConfigError::Missing("n").to_string().contains('n'));
    }
}
