//! `key=value` run configuration — the scriptable analog of the paper's
//! "fully parameterized" MATLAB GUI.
//!
//! Example: `pom simulate n=40 potential=desync sigma=3 tcomp=0.9
//! tcomm=0.1 distances=-1,1 t_end=120 init=sync view=circle`.
//!
//! The actual parsing and typing live in [`pom_sweep::args`]: one shared
//! typed-argument table serves the CLI, the `pom serve` daemon's HTTP
//! query strings, and the serve options — so every surface accepts and
//! rejects identical inputs (including the spec-file number grammar:
//! `1.5e-3`, `1_000`). This module just re-exports it under the CLI's
//! historical names.

pub use pom_sweep::args::{ArgError as ConfigError, TypedArgs as Config};

#[cfg(test)]
mod tests {
    use super::*;

    // The typed accessors themselves are tested in `pom_sweep::args`;
    // these pin the CLI-facing aliases and error surface.

    #[test]
    fn aliases_parse_key_values() {
        let c = Config::parse(["n=40", "sigma=3.0"]).unwrap();
        assert_eq!(c.usize_or("n", 0).unwrap(), 40);
        assert_eq!(c.f64_or("sigma", 0.0).unwrap(), 3.0);
    }

    #[test]
    fn error_alias_matches() {
        assert_eq!(
            Config::parse(["oops"]).unwrap_err(),
            ConfigError::Malformed("oops".into())
        );
        let e = ConfigError::BadValue {
            key: "sigma".into(),
            value: "x".into(),
            expected: "a number",
        };
        assert!(e.to_string().contains("sigma"));
    }
}
