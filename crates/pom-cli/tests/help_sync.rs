//! Help/docs drift guards.
//!
//! The command registry is the single source of truth; everything a
//! user reads about the CLI is generated from it. These tests fail
//! the build when a generated artifact goes stale.

use pom_cli::run_cli;
use pom_sweep::registry::toolkit;

/// `docs/CLI.md` is checked in for browsing on the forge; it must be
/// byte-identical to what the registry renders today.
#[test]
fn docs_cli_md_is_in_sync_with_the_registry() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../docs/CLI.md");
    let on_disk = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    assert_eq!(
        on_disk,
        toolkit().markdown(),
        "docs/CLI.md is stale — regenerate with:\n\n    \
         cargo run -q -p pom-cli -- help format=md > docs/CLI.md\n"
    );
}

/// `pom help format=md` is exactly the generator for that file.
#[test]
fn help_md_matches_registry_markdown() {
    assert_eq!(
        run_cli(["help", "format=md"]).unwrap(),
        toolkit().markdown()
    );
}

/// `pom help format=json` prints the same document `GET /schema`
/// serves (the daemon side is pinned in pom-serve's schema_parity
/// suite; both render `Registry::schema_json`).
#[test]
fn help_json_matches_schema_document() {
    assert_eq!(
        run_cli(["help", "format=json"]).unwrap(),
        format!("{}\n", toolkit().schema_json())
    );
}
