//! Differential fuzz of the CLI front end against the registry.
//!
//! Every command is driven with the same classes of malformed input the
//! daemon's query validation sees — typo'd keys, duplicates, type
//! mismatches — and the error the CLI surfaces must be exactly the
//! registry's explanation for that input. Together with
//! `pom-serve/tests/schema_parity.rs` (which pins the HTTP side to the
//! same `explain` rendering) this guarantees both front ends describe a
//! given mistake with the same words.

use pom_cli::{cmd, run_cli};
use pom_sweep::registry::CommandSpec;

/// Fuzz word lists per command: each is expected to be rejected by the
/// registry; cases the registry happens to accept are skipped (they
/// would run the command for real).
fn fuzz_cases(spec: &'static CommandSpec) -> Vec<Vec<String>> {
    let mut cases = vec![
        vec!["zzzq=1".to_string()],        // unknown, no near miss
        vec!["not-key-value".to_string()], // malformed / stray positional
    ];
    for arg in spec.args {
        // Near-miss typo: drop the key's last character.
        if arg.name.len() > 2 {
            let typo = &arg.name[..arg.name.len() - 1];
            cases.push(vec![format!("{typo}=@@junk@@")]);
        }
        // Type mismatch (strings admit anything — those parse clean and
        // are skipped below).
        cases.push(vec![format!("{}=@@junk@@", arg.name)]);
        // Duplicate key.
        cases.push(vec![
            format!("{}=@@junk@@", arg.name),
            format!("{}=@@junk@@", arg.name),
        ]);
    }
    cases
}

#[test]
fn cli_errors_are_verbatim_registry_explanations() {
    let mut rejected = 0usize;
    for (spec, _) in cmd::commands() {
        for words in fuzz_cases(spec) {
            let Err(e) = spec.parse(words.iter()) else {
                continue; // registry accepts it; nothing to compare
            };
            let expected = format!("configuration error: {}", spec.explain(&e));
            let mut argv = vec![spec.name.to_string()];
            argv.extend(words.iter().cloned());
            let got = run_cli(argv.iter().map(String::as_str))
                .expect_err(&format!("{argv:?} should fail"));
            assert_eq!(
                got.to_string(),
                expected,
                "{argv:?}: CLI wording diverged from registry explanation"
            );
            rejected += 1;
        }
    }
    assert!(
        rejected >= 50,
        "fuzz corpus collapsed: only {rejected} rejecting cases"
    );
}

#[test]
fn alias_spellings_hit_the_same_explanations() {
    // A bad value through an alias is explained under the canonical key.
    let (spec, _) = cmd::commands()
        .iter()
        .find(|(s, _)| s.name == "simulate")
        .expect("simulate registered");
    let e = spec.parse(["rhs_threads=lots"]).expect_err("bad value");
    let expected = format!("configuration error: {}", spec.explain(&e));
    let got = run_cli(["simulate", "rhs_threads=lots"]).expect_err("bad value");
    assert_eq!(got.to_string(), expected);
    assert!(
        got.to_string().contains("rhs-threads") || got.to_string().contains("rhs_threads"),
        "{got}"
    );
}
