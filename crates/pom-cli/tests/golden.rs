//! Golden-output tests: the registry refactor must be behavior
//! preserving, so every representative pre-refactor invocation is
//! pinned byte-for-byte against output captured from the old
//! hand-written dispatcher (same build profile — dev/release
//! invariance was verified separately when the files were recorded).

use pom_cli::run_cli;

fn golden(name: &str) -> String {
    let path = format!("{}/tests/golden/{name}.txt", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

fn check(name: &str, args: &[&str]) {
    let out = run_cli(args.iter().copied()).unwrap_or_else(|e| panic!("{name}: {e}"));
    assert_eq!(out, golden(name), "{name}: output drifted from golden");
}

#[test]
fn potentials_golden() {
    check("potentials_default", &["potentials"]);
    check(
        "potentials_sigma2",
        &["potentials", "sigma=2", "xmax=5", "n=11"],
    );
}

#[test]
fn scaling_golden() {
    check("scaling_default", &["scaling"]);
    check("scaling_cores6", &["scaling", "cores=6"]);
}

#[test]
fn fig2_golden() {
    for panel in ["a", "b", "c", "d"] {
        check(
            &format!("fig2_{panel}"),
            &["fig2", &format!("panel={panel}")],
        );
    }
}

#[test]
fn simulate_views_golden() {
    check(
        "simulate_order",
        &[
            "simulate",
            "n=12",
            "potential=tanh",
            "coupling=6",
            "t_end=80",
            "init=spread",
            "view=order",
        ],
    );
    check(
        "simulate_circle",
        &[
            "simulate",
            "n=12",
            "potential=desync",
            "sigma=1.5",
            "topology=chain",
            "coupling=6",
            "t_end=300",
            "init=spread",
            "amplitude=0.1",
            "view=circle",
        ],
    );
    check(
        "simulate_heatmap",
        &[
            "simulate",
            "n=8",
            "potential=tanh",
            "coupling=4",
            "t_end=20",
            "delay_rank=3",
            "delay_at=2",
            "delay_len=2",
            "init=sync",
            "view=heatmap",
        ],
    );
    check(
        "simulate_spread_view",
        &[
            "simulate",
            "n=10",
            "coupling=5",
            "t_end=40",
            "init=spread",
            "view=spread",
            "seed=3",
        ],
    );
}

#[test]
fn simulate_observe_golden() {
    check(
        "simulate_observed",
        &[
            "simulate",
            "n=12",
            "potential=tanh",
            "coupling=6",
            "t_end=40",
            "init=spread",
            "observe=1",
            "record-every=2",
        ],
    );
    // Explicit trajectory-only flags under observe=1 emit ignored notes.
    check(
        "simulate_observed_ignored",
        &[
            "simulate",
            "n=8",
            "coupling=4",
            "t_end=10",
            "observe=1",
            "samples=50",
        ],
    );
    // …and record-every without observe=1 notes it is ignored.
    check(
        "simulate_record_every_note",
        &[
            "simulate",
            "n=8",
            "coupling=4",
            "t_end=10",
            "record-every=5",
        ],
    );
}

#[test]
fn simulate_ensemble_golden() {
    check(
        "simulate_replicas",
        &[
            "simulate",
            "n=10",
            "potential=tanh",
            "coupling=4",
            "t_end=20",
            "init=spread",
            "replicas=3",
            "h=0.05",
        ],
    );
}

#[test]
fn simulate_kernel_golden() {
    check(
        "simulate_kernel",
        &[
            "simulate",
            "n=12",
            "potential=desync",
            "sigma=1.5",
            "topology=chain",
            "coupling=6",
            "t_end=50",
            "init=spread",
            "amplitude=0.1",
            "kernel=sincos",
            "rhs-threads=2",
        ],
    );
    // The sweep-spec alias spelling resolves to the same canonical key.
    check(
        "simulate_rhs_alias",
        &[
            "simulate",
            "n=8",
            "potential=tanh",
            "coupling=4",
            "t_end=10",
            "rhs_threads=3",
        ],
    );
}

#[test]
fn canned_sweeps_golden() {
    check("wave_sweep", &["wave-sweep", "n=24", "t_end=60"]);
    check("sigma_sweep", &["sigma-sweep", "n=12", "t_end=200"]);
}

#[test]
fn sweep_jsonl_golden() {
    let spec = format!(
        "{}/tests/golden/sweep_spec.toml",
        env!("CARGO_MANIFEST_DIR")
    );
    let out = run_cli(["sweep", spec.as_str()]).unwrap();
    assert_eq!(out, golden("sweep_jsonl"), "sweep JSONL stream drifted");
}
