//! CLI behavior tests: dispatch, registry-generated help, per-command
//! parsing and reports. (Byte-exact output pinning lives in
//! `golden.rs`; CLI↔HTTP error parity in `pom-serve`'s
//! `schema_parity` suite.)

use pom_cli::{help, run_cli, CliError};
use pom_sweep::registry::{toolkit, CommandSpec};

// ---------------------------------------------------------------------
// Dispatch and registry structure
// ---------------------------------------------------------------------

#[test]
fn help_lists_all_commands_structurally() {
    // Generated from the registry, so the check iterates the registry —
    // a command added there can never be missing here.
    let h = help();
    for c in toolkit().commands {
        assert!(h.contains(c.name), "help missing `{}`", c.name);
        assert!(
            h.contains(c.summary),
            "help missing summary of `{}`",
            c.name
        );
    }
}

#[test]
fn dispatch_table_matches_registry() {
    // The cmd modules bind run functions to registry specs; the two
    // lists must be the same commands in the same (help) order.
    let bound: Vec<&CommandSpec> = pom_cli::cmd::commands().iter().map(|(s, _)| *s).collect();
    let registered: Vec<&CommandSpec> = toolkit().commands.iter().collect();
    assert_eq!(
        bound.iter().map(|c| c.name).collect::<Vec<_>>(),
        registered.iter().map(|c| c.name).collect::<Vec<_>>(),
        "dispatch table and registry disagree"
    );
    for (b, r) in bound.iter().zip(&registered) {
        // `defs` items are consts (no stable address), so pin structure:
        // same arg table, same aliases, same summary.
        let args = |c: &CommandSpec| -> Vec<&str> { c.args.iter().map(|a| a.name).collect() };
        assert_eq!(
            args(b),
            args(r),
            "`{}` bound to a different arg table",
            b.name
        );
        assert_eq!(b.aliases, r.aliases, "`{}` aliases differ", b.name);
        assert_eq!(b.summary, r.summary, "`{}` summary differs", b.name);
    }
}

#[test]
fn every_command_help_page_renders() {
    for c in toolkit().commands {
        let page = run_cli(["help", c.name]).unwrap();
        assert!(page.contains(c.name), "{page}");
        assert!(page.contains("USAGE"), "{page}");
        for a in c.args {
            assert!(
                page.contains(a.name),
                "`{}` page missing arg `{}`",
                c.name,
                a.name
            );
        }
    }
}

#[test]
fn unknown_command_is_reported_with_suggestion() {
    let e = run_cli(["frobnicate"]).unwrap_err();
    assert!(e.to_string().contains("frobnicate"));
    // A near-miss gets a "did you mean".
    let e = run_cli(["sweeep"]).unwrap_err();
    match &e {
        CliError::UnknownCommand { suggestion, .. } => {
            assert_eq!(*suggestion, Some("sweep"));
        }
        other => panic!("{other:?}"),
    }
    assert!(e.to_string().contains("did you mean `sweep`?"), "{e}");
    // help for an unknown command too.
    let e = run_cli(["help", "simulat"]).unwrap_err();
    assert!(e.to_string().contains("did you mean `simulate`?"), "{e}");
}

#[test]
fn unknown_key_names_itself_and_suggests() {
    let e = run_cli(["simulate", "sigm=2"]).unwrap_err();
    let msg = e.to_string();
    assert!(msg.contains("unknown key `sigm`"), "{msg}");
    assert!(msg.contains("did you mean `sigma`?"), "{msg}");
}

#[test]
fn empty_args_show_help() {
    let out = run_cli(Vec::<String>::new()).unwrap();
    assert!(out.contains("USAGE"));
    assert_eq!(out, help());
    // `pom help` and the aliases print the same text.
    assert_eq!(run_cli(["help"]).unwrap(), out);
    assert_eq!(run_cli(["--help"]).unwrap(), out);
    assert_eq!(run_cli(["-h"]).unwrap(), out);
}

#[test]
fn help_json_is_the_schema_document() {
    let out = run_cli(["help", "format=json"]).unwrap();
    assert_eq!(out, format!("{}\n", toolkit().schema_json()));
    assert!(out.starts_with("{\"commands\":["));
}

#[test]
fn extra_positional_is_a_proper_error() {
    // `sweep` declares one positional; a second bare word errors by name
    // instead of being silently folded into the spec path.
    let e = run_cli(["sweep", "a.toml", "b.toml"]).unwrap_err();
    assert!(
        e.to_string()
            .contains("unexpected positional argument `b.toml`"),
        "{e}"
    );
    // Commands without positionals keep the legacy malformed wording.
    let e = run_cli(["potentials", "oops"]).unwrap_err();
    assert!(
        e.to_string().contains("is not of the form key=value"),
        "{e}"
    );
}

// ---------------------------------------------------------------------
// sweep
// ---------------------------------------------------------------------

#[test]
fn sweep_without_spec_reports_missing_key() {
    let e = run_cli(["sweep"]).unwrap_err();
    assert!(e.to_string().contains("missing required key `spec`"), "{e}");
    // The explanation carries the spec's doc line.
    assert!(e.to_string().contains("campaign spec file"), "{e}");
}

#[test]
fn sweep_resume_requires_jsonl_file_output() {
    // Without out= (and with format=csv) there is no spec-hash stream
    // to resume from; silently re-running everything would be worse
    // than an error.
    let spec = std::env::temp_dir().join(format!("pom-cli-rr-{}.toml", std::process::id()));
    std::fs::write(&spec, "[model]\nn = 4\n[sim]\nt_end = 2.0\nsamples = 5\n").unwrap();
    let e = run_cli(["sweep", spec.to_str().unwrap(), "resume=1"]).unwrap_err();
    assert!(e.to_string().contains("resume"), "{e}");
    let e = run_cli([
        "sweep",
        spec.to_str().unwrap(),
        "resume=1",
        "format=csv",
        "out=/tmp/x.csv",
    ])
    .unwrap_err();
    assert!(e.to_string().contains("jsonl"), "{e}");
    let _ = std::fs::remove_file(&spec);
}

#[test]
fn sweep_runs_spec_file_and_streams_jsonl() {
    let spec = r#"
        [campaign]
        name = "cli-smoke"
        seed = 1
        observables = ["final_r"]
        [model]
        n = 4
        coupling = 6.0
        [sim]
        t_end = 5.0
        samples = 10
        [[axes]]
        key = "model.coupling"
        values = [4.0, 8.0]
    "#;
    let path = std::env::temp_dir().join(format!("pom-cli-sweep-{}.toml", std::process::id()));
    std::fs::write(&path, spec).unwrap();
    let out = run_cli(["sweep", path.to_str().unwrap()]).unwrap();
    // Header + 2 rows of JSONL.
    assert_eq!(out.lines().count(), 3, "{out}");
    assert!(out.lines().next().unwrap().contains("cli-smoke"));
    assert!(out.contains("\"final_r\""));
    // Positional and spec= forms agree.
    let keyed = run_cli(["sweep".to_string(), format!("spec={}", path.display())]).unwrap();
    assert_eq!(out, keyed);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn sweep_writes_and_resumes_file_output() {
    let spec = r#"
        [campaign]
        observables = ["final_spread"]
        [model]
        n = 4
        [sim]
        t_end = 4.0
        samples = 10
        [[axes]]
        key = "model.coupling"
        values = [2.0, 4.0, 6.0]
    "#;
    let dir = std::env::temp_dir();
    let spec_path = dir.join(format!("pom-cli-res-{}.toml", std::process::id()));
    let out_path = dir.join(format!("pom-cli-res-{}.jsonl", std::process::id()));
    std::fs::write(&spec_path, spec).unwrap();
    let _ = std::fs::remove_file(&out_path);

    let report = run_cli([
        "sweep".to_string(),
        spec_path.display().to_string(),
        format!("out={}", out_path.display()),
    ])
    .unwrap();
    assert!(report.contains("executed: 3"), "{report}");

    // Resuming a complete file executes nothing.
    let report = run_cli([
        "sweep".to_string(),
        spec_path.display().to_string(),
        format!("out={}", out_path.display()),
        "resume=1".to_string(),
    ])
    .unwrap();
    assert!(report.contains("executed: 0"), "{report}");
    assert!(report.contains("skipped:  3"), "{report}");
    let _ = std::fs::remove_file(&spec_path);
    let _ = std::fs::remove_file(&out_path);
}

#[test]
fn sweep_stats_appends_latency_summary() {
    // stats=1 flips the global instrumentation switch on; any other
    // test observing metrics must tolerate that (they only read
    // their own registry entries, so this is safe).
    let spec = r#"
        [campaign]
        observables = ["final_r"]
        [model]
        n = 4
        [sim]
        t_end = 2.0
        samples = 5
        [[axes]]
        key = "model.coupling"
        values = [2.0, 4.0]
    "#;
    let path = std::env::temp_dir().join(format!("pom-cli-stats-{}.toml", std::process::id()));
    std::fs::write(&path, spec).unwrap();
    let out = run_cli(["sweep", path.to_str().unwrap(), "stats=1"]).unwrap();
    assert!(out.contains("# point latency"), "{out}");
    assert!(out.contains("p99:"), "{out}");
    let _ = std::fs::remove_file(&path);
}

// ---------------------------------------------------------------------
// serve / reports
// ---------------------------------------------------------------------

#[test]
fn serve_rejects_bad_log_level() {
    let e = run_cli(["serve", "log-level=chatty"]).unwrap_err();
    assert!(e.to_string().contains("warn"), "{e}");
}

#[test]
fn potentials_reports_first_zero() {
    let out = run_cli(["potentials", "sigma=3"]).unwrap();
    assert!(out.contains("2.0000"), "{out}");
    assert!(out.contains("lockstep stable under tanh: true"));
    assert!(out.contains("lockstep stable under desync: false"));
}

#[test]
fn scaling_shows_saturation_ordering() {
    let out = run_cli(["scaling"]).unwrap();
    assert!(out.contains("STREAM"));
    assert!(out.contains("PISOLVER:        never"));
}

#[test]
fn simulate_tanh_synchronizes() {
    let out = run_cli([
        "simulate",
        "n=12",
        "potential=tanh",
        "coupling=6",
        "t_end=80",
        "init=spread",
        "view=order",
    ])
    .unwrap();
    // r printed with 5 decimals; after resync it is ≈ 1.
    assert!(
        out.contains("final order parameter r: 1.0000") || out.contains("r: 0.9999"),
        "{out}"
    );
}

#[test]
fn simulate_desync_settles_at_two_thirds_sigma() {
    let out = run_cli([
        "simulate",
        "n=12",
        "potential=desync",
        "sigma=1.5",
        "topology=chain",
        "coupling=6",
        "t_end=300",
        "init=spread",
        "amplitude=0.1",
        "view=circle",
    ])
    .unwrap();
    let gap: f64 = out
        .lines()
        .find(|l| l.starts_with("mean |adjacent gap|"))
        .and_then(|l| l.split_whitespace().rev().nth(1).map(str::to_string))
        .and_then(|v| v.parse().ok())
        .expect("gap line present");
    assert!(
        (gap - 1.0).abs() < 0.02,
        "gap {gap} should be ≈ 2σ/3 = 1.0\n{out}"
    );
    assert!(out.contains("circle diagram"));
}

#[test]
fn simulate_heatmap_view() {
    let out = run_cli([
        "simulate",
        "n=8",
        "potential=tanh",
        "coupling=4",
        "t_end=20",
        "delay_rank=3",
        "delay_at=2",
        "delay_len=2",
        "init=sync",
        "view=heatmap",
    ])
    .unwrap();
    assert!(out.contains("heatmap"), "{out}");
    // 8 oscillator rows rendered.
    assert!(out.lines().filter(|l| l.contains('|')).count() >= 8);
}

#[test]
fn simulate_replicas_reports_aggregates() {
    let out = run_cli([
        "simulate",
        "n=10",
        "potential=tanh",
        "coupling=4",
        "t_end=20",
        "init=spread",
        "replicas=3",
        "h=0.05",
    ])
    .unwrap();
    assert!(out.contains("R = 3 replicas"), "{out}");
    // One row per replica plus the three aggregate lines.
    for rep in 0..3 {
        assert!(out.contains(&format!("\n{rep:>8}  ")), "{out}");
    }
    assert!(out.contains("aggregates over 3 replicas"), "{out}");
    assert!(out.contains("final r:"), "{out}");
}

#[test]
fn simulate_replicas_validation() {
    let e = run_cli(["simulate", "replicas=0"]).unwrap_err();
    assert!(e.to_string().contains("replicas"), "{e}");
    // Deterministic setup: R identical replicas is an error, not fake
    // statistics.
    let e = run_cli(["simulate", "init=sync", "replicas=2", "t_end=5"]).unwrap_err();
    assert!(e.to_string().contains("identical"), "{e}");
    let e = run_cli(["simulate", "replicas=2", "h=-0.1", "t_end=5"]).unwrap_err();
    assert!(e.to_string().contains("step size"), "{e}");
    // Noise alone is a valid per-replica randomness source.
    let out = run_cli([
        "simulate",
        "n=8",
        "init=sync",
        "noise=0.05",
        "coupling=4",
        "replicas=2",
        "t_end=10",
        "h=0.1",
    ])
    .unwrap();
    assert!(out.contains("R = 2 replicas"), "{out}");
}

#[test]
fn simulate_replica_zero_matches_single_run() {
    // The ensemble's replica 0 row must reproduce the plain run's
    // printed finals exactly (same seed, same solver).
    let singles: Vec<String> = ["7", "evens"]
        .iter()
        .map(|_| {
            run_cli([
                "simulate",
                "n=10",
                "potential=tanh",
                "coupling=4",
                "t_end=20",
                "init=spread",
                "seed=7",
                "replicas=2",
                "h=0.05",
            ])
            .unwrap()
        })
        .collect();
    // Deterministic across invocations.
    assert_eq!(singles[0], singles[1]);
    let row0 = singles[0]
        .lines()
        .find(|l| l.trim_start().starts_with("0 "))
        .unwrap()
        .to_string();
    let r0: f64 = row0.split_whitespace().nth(1).unwrap().parse().unwrap();
    let plain = run_cli([
        "simulate",
        "n=10",
        "potential=tanh",
        "coupling=4",
        "t_end=20",
        "init=spread",
        "seed=7",
    ])
    .unwrap();
    let plain_r: f64 = plain
        .lines()
        .find(|l| l.starts_with("final order parameter r"))
        .and_then(|l| l.split_whitespace().last())
        .unwrap()
        .parse()
        .unwrap();
    // Printed at 5 decimals on both sides; solvers differ (fixed h vs
    // auto), so compare loosely — both runs converge to lockstep.
    assert!(
        (r0 - plain_r).abs() < 5e-3,
        "replica 0 r {r0} vs single-run r {plain_r}"
    );
}

#[test]
fn simulate_rejects_bad_potential() {
    let e = run_cli(["simulate", "potential=quux"]).unwrap_err();
    assert!(e.to_string().contains("tanh"));
}

#[test]
fn simulate_kernel_knobs() {
    // The split kernel reproduces the tanh-free sin dynamics within
    // the printed precision; the header reports the selection.
    let out = run_cli([
        "simulate",
        "n=12",
        "potential=desync",
        "sigma=1.5",
        "topology=chain",
        "coupling=6",
        "t_end=50",
        "init=spread",
        "amplitude=0.1",
        "kernel=sincos",
        "rhs-threads=2",
    ])
    .unwrap();
    assert!(out.contains("kernel = sincos (2 rhs threads)"), "{out}");
    // The sweep-spec spelling must not silently fall back to serial.
    let out = run_cli([
        "simulate",
        "n=8",
        "potential=tanh",
        "coupling=4",
        "t_end=10",
        "rhs_threads=3",
    ])
    .unwrap();
    assert!(out.contains("(3 rhs threads)"), "{out}");
    let e = run_cli(["simulate", "kernel=quux"]).unwrap_err();
    assert!(e.to_string().contains("sincos"), "{e}");
}

#[test]
fn sigma_sweep_tracks_two_thirds_law() {
    let out = run_cli(["sigma-sweep", "n=12", "t_end=200"]).unwrap();
    // Every row's relative error column should be small; spot-check
    // that at least the σ=3 row is within 5%.
    let row = out
        .lines()
        .find(|l| l.trim_start().starts_with("3.0"))
        .unwrap();
    let rel: f64 = row.split_whitespace().last().unwrap().parse().unwrap();
    assert!(rel < 0.05, "σ=3 relative error {rel}: {out}");
}

#[test]
fn wave_sweep_speed_increases_with_coupling() {
    let out = run_cli(["wave-sweep", "n=24", "t_end=60"]).unwrap();
    let speeds: Vec<f64> = out
        .lines()
        .filter_map(|l| {
            let cols: Vec<&str> = l.split_whitespace().collect();
            if cols.len() == 3 && cols[0].parse::<f64>().is_ok() {
                cols[1].parse().ok()
            } else {
                None
            }
        })
        .collect();
    assert!(speeds.len() >= 4, "{out}");
    assert!(
        speeds.last().unwrap() > speeds.first().unwrap(),
        "speed should grow with βκ: {speeds:?}"
    );
}
