//! Declarative campaign specifications.
//!
//! A campaign spec is a TOML (or JSON) document with:
//!
//! * a `[campaign]` table — name, master seed, workload kind, and the
//!   observables each point reports;
//! * a *base scenario* — `[model]`/`[topology]`/`[init]`/`[noise]`/
//!   `[inject]`/`[sim]`/`[wave]` for the oscillator model, or `[mpisim]`
//!   for the discrete-event cluster simulator;
//! * `[[axes]]` — the swept dimensions. Each axis either lists explicit
//!   `values`, spans a linear `grid = { start, stop, steps }`, or *zips*
//!   several `keys` whose `values` entries vary together.
//!
//! The cartesian product of all axes is the scenario grid; axis values are
//! applied to the base scenario by dotted path (`"model.sigma"`), so
//! anything in the base tables can be swept — including strings such as
//! `model.potential` or `mpisim.protocol`.

use std::collections::BTreeMap;
use std::fmt;

use pom_core::{
    InitialCondition, Normalization, Pom, PomBuilder, Potential, RhsKernel, SimOptions,
    SolverChoice,
};
use pom_kernels::Kernel;
use pom_mpisim::{MpiProtocol, ProgramSpec, SimDelay, WorkSpec};
use pom_noise::{DelayEvent, OneOffDelays, SumNoise, WhiteJitter};
use pom_topology::Topology;

use crate::value::{fnv1a, parse_auto, ParseError, Value};

/// Everything that can go wrong while loading or running a campaign.
#[derive(Debug)]
pub enum SweepError {
    /// The spec text failed to parse.
    Parse(ParseError),
    /// The spec parsed but is semantically invalid.
    Spec(String),
    /// A scenario run failed.
    Run(String),
    /// Result-stream I/O failed.
    Io(std::io::Error),
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SweepError::Parse(e) => write!(f, "spec parse error: {e}"),
            SweepError::Spec(m) => write!(f, "invalid spec: {m}"),
            SweepError::Run(m) => write!(f, "run failed: {m}"),
            SweepError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for SweepError {}

impl From<ParseError> for SweepError {
    fn from(e: ParseError) -> Self {
        SweepError::Parse(e)
    }
}

impl From<std::io::Error> for SweepError {
    fn from(e: std::io::Error) -> Self {
        SweepError::Io(e)
    }
}

fn spec_err(m: impl Into<String>) -> SweepError {
    SweepError::Spec(m.into())
}

/// One swept dimension: one or more dotted keys plus the value tuples they
/// take. Single-key axes hold 1-tuples.
#[derive(Debug, Clone)]
pub struct Axis {
    /// Dotted paths into the base scenario.
    pub keys: Vec<String>,
    /// One entry per grid position; `values[i].len() == keys.len()`.
    pub values: Vec<Vec<Value>>,
}

impl Axis {
    /// Number of positions along this axis.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the axis has no positions (invalid; rejected at parse).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// The observables a campaign computes per point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Observable {
    /// Kuramoto order parameter at the final sample (model).
    FinalOrderParameter,
    /// Phase spread `max − min` at the final sample (model).
    FinalPhaseSpread,
    /// Mean `|adjacent phase difference|` at the final sample (model).
    MeanAbsGap,
    /// `|gap − 2σ/3| / (2σ/3)` — the §5.2.2 law (model, desync potential).
    RelErrTwoThirds,
    /// Mean Kuramoto `r` over every accepted integrator step (model,
    /// streaming-only — folded online, never stored).
    MeanOrderParameter,
    /// Minimum Kuramoto `r` over the run (model, streaming-only): how far
    /// from lockstep the system ever strayed.
    MinOrderParameter,
    /// Largest `|adjacent phase difference|` seen at any step (model,
    /// streaming-only): the peak wavefront steepness.
    MaxAbsGap,
    /// Idle-wave front speed from a perturbed/baseline pair (both
    /// substrates; ranks per model time unit, or ranks/second on the
    /// simulator).
    WaveSpeed,
    /// `R²` of the upward wave fit (quality of [`Observable::WaveSpeed`]).
    WaveR2,
    /// Total wall-clock of the simulated program (mpisim).
    Makespan,
    /// Summed wait time across ranks (mpisim).
    TotalWait,
}

impl Observable {
    /// Parse a spec name.
    pub fn from_name(name: &str) -> Option<Self> {
        Some(match name {
            "final_r" | "final_order_parameter" => Observable::FinalOrderParameter,
            "final_spread" | "final_phase_spread" => Observable::FinalPhaseSpread,
            "mean_abs_gap" => Observable::MeanAbsGap,
            "rel_err_two_thirds" => Observable::RelErrTwoThirds,
            "mean_r" => Observable::MeanOrderParameter,
            "min_r" => Observable::MinOrderParameter,
            "max_gap" => Observable::MaxAbsGap,
            "wave_speed" => Observable::WaveSpeed,
            "wave_r2" => Observable::WaveR2,
            "makespan" => Observable::Makespan,
            "total_wait" => Observable::TotalWait,
            _ => return None,
        })
    }

    /// The canonical result-column name.
    pub fn name(&self) -> &'static str {
        match self {
            Observable::FinalOrderParameter => "final_r",
            Observable::FinalPhaseSpread => "final_spread",
            Observable::MeanAbsGap => "mean_abs_gap",
            Observable::RelErrTwoThirds => "rel_err_two_thirds",
            Observable::MeanOrderParameter => "mean_r",
            Observable::MinOrderParameter => "min_r",
            Observable::MaxAbsGap => "max_gap",
            Observable::WaveSpeed => "wave_speed",
            Observable::WaveR2 => "wave_r2",
            Observable::Makespan => "makespan",
            Observable::TotalWait => "total_wait",
        }
    }

    /// Wave observables need a paired baseline (no-injection) run.
    pub fn needs_baseline(&self) -> bool {
        matches!(self, Observable::WaveSpeed | Observable::WaveR2)
    }

    /// Time-resolved observables only computable by the streaming
    /// (observer) execution path — they summarize every integrator step,
    /// which the trajectory path never materializes at full resolution.
    /// Incompatible with [`Observable::needs_baseline`] observables in
    /// one campaign (those force the recorded perturbed/baseline pair).
    pub fn needs_series(&self) -> bool {
        matches!(
            self,
            Observable::MeanOrderParameter | Observable::MinOrderParameter | Observable::MaxAbsGap
        )
    }
}

/// A parsed campaign: base scenario tree, axes, seeding, observables.
#[derive(Debug, Clone)]
pub struct CampaignSpec {
    /// Campaign name (header metadata).
    pub name: String,
    /// Master seed; per-point seeds derive from it and the point index.
    pub seed: u64,
    /// Replicas per grid point (`campaign.replicas`, default 1). With
    /// `R ≥ 2` each point runs an R-member lockstep ensemble (distinct
    /// [`CampaignSpec::replica_seed`]s) and reports
    /// `<obs>_mean`/`<obs>_ci95`/`<obs>_min`/`<obs>_max` columns instead
    /// of the plain per-observable values.
    pub replicas: usize,
    /// Observables, in output order.
    pub observables: Vec<Observable>,
    /// The base scenario tree (everything except `[campaign]`/`axes`).
    pub base: Value,
    /// Swept dimensions, outermost first.
    pub axes: Vec<Axis>,
    /// FNV-1a of the canonical spec rendering — the resume identity.
    pub spec_hash: u64,
}

impl CampaignSpec {
    /// Parse TOML or JSON spec text.
    pub fn parse(text: &str) -> Result<Self, SweepError> {
        let root = parse_auto(text)?;
        let spec_hash = fnv1a(root.canonical().as_bytes());
        let table = root
            .as_table()
            .ok_or_else(|| spec_err("spec root must be a table"))?;

        let campaign = root.get("campaign");
        let name = campaign
            .and_then(|c| c.get("name"))
            .and_then(Value::as_str)
            .unwrap_or("campaign")
            .to_string();
        let seed = campaign
            .and_then(|c| c.get("seed"))
            .map(|v| {
                v.as_i64()
                    .ok_or_else(|| spec_err("campaign.seed must be an integer"))
            })
            .transpose()?
            .unwrap_or(0) as u64;
        if let Some(c) = campaign.and_then(Value::as_table) {
            check_section(c, "campaign", "both")?;
        }
        let replicas = campaign
            .and_then(|c| c.get("replicas"))
            .map(|v| {
                v.as_i64()
                    .filter(|r| *r >= 1)
                    .ok_or_else(|| spec_err("campaign.replicas must be an integer ≥ 1"))
            })
            .transpose()?
            .unwrap_or(1) as usize;

        let observables = match campaign.and_then(|c| c.get("observables")) {
            None => default_observables(&root),
            Some(v) => v
                .as_array()
                .ok_or_else(|| spec_err("campaign.observables must be an array of names"))?
                .iter()
                .map(|o| {
                    let s = o
                        .as_str()
                        .ok_or_else(|| spec_err("campaign.observables entries must be strings"))?;
                    Observable::from_name(s)
                        .ok_or_else(|| spec_err(format!("unknown observable `{s}`")))
                })
                .collect::<Result<_, _>>()?,
        };
        if observables.is_empty() {
            return Err(spec_err("campaign.observables must not be empty"));
        }
        // Streaming-only observables run through the observer fast path
        // (no trajectory); wave observables force the recorded
        // perturbed/baseline pair. Mixing them in one campaign would make
        // the streaming values depend on which other columns were
        // requested — reject instead.
        let series: Vec<&str> = observables
            .iter()
            .filter(|o| o.needs_series())
            .map(|o| o.name())
            .collect();
        if !series.is_empty() && observables.iter().any(Observable::needs_baseline) {
            return Err(spec_err(format!(
                "streaming observables ({}) cannot be combined with wave observables \
                 in one campaign; run them as separate campaigns",
                series.join(", ")
            )));
        }
        // Replicated points stream through the ensemble fast path; wave
        // observables force the recorded perturbed/baseline trajectory
        // pair, which has no batched equivalent.
        if replicas > 1 {
            if let Some(o) = observables.iter().find(|o| o.needs_baseline()) {
                return Err(spec_err(format!(
                    "observable `{}` needs a perturbed/baseline run pair and cannot be \
                     combined with campaign.replicas = {replicas}; wave campaigns run \
                     one replica per point",
                    o.name()
                )));
            }
        }

        let axes = match root.get("axes") {
            None => Vec::new(),
            Some(v) => v
                .as_array()
                .ok_or_else(|| spec_err("`axes` must be an array of tables"))?
                .iter()
                .map(parse_axis)
                .collect::<Result<_, _>>()?,
        };

        let mut base = BTreeMap::new();
        for (k, v) in table {
            if k != "campaign" && k != "axes" {
                base.insert(k.clone(), v.clone());
            }
        }
        let mut base = Value::Table(base);
        // Scenario resolution sees only the base tree, so an explicit
        // `campaign.workload` must survive the strip above (otherwise a
        // defaults-only `workload = "mpisim"` spec would resolve as a
        // model scenario, and a stray `[mpisim]` table would win over an
        // explicit `workload = "model"`).
        if let Some(w) = campaign.and_then(|c| c.get("workload")) {
            base.set("campaign.workload", w.clone())
                .map_err(|e| spec_err(format!("campaign.workload: {e}")))?;
        }

        let spec = Self {
            name,
            seed,
            replicas,
            observables,
            base,
            axes,
            spec_hash,
        };
        // Fail fast: the base scenario (axis defaults applied where the
        // axis key has no base entry) must resolve.
        let scenario0 = spec.scenario_at(0)?;
        if replicas > 1 {
            match &scenario0 {
                Scenario::MpiSim(_) => {
                    return Err(spec_err(
                        "campaign.replicas ≥ 2 needs the model workload; the mpisim \
                         substrate has no ensemble path",
                    ))
                }
                Scenario::Model(m) => {
                    // Replicas differ only through their derived seeds. A
                    // scenario whose seeds are all pinned (or unused)
                    // would run R bitwise-identical copies — reject the
                    // degenerate spec instead of reporting ci95 = 0.
                    let init_seeded = matches!(m.init, InitSpec::Spread { seed: None, .. });
                    let noise_seeded = m.noise_sigma.is_some() && m.noise_seed.is_none();
                    if !init_seeded && !noise_seeded {
                        return Err(spec_err(
                            "campaign.replicas ≥ 2 would run identical replicas: nothing \
                             varies per replica (init.kind = \"spread\" without a pinned \
                             init.seed, or [noise] without a pinned noise.seed, is \
                             required so each replica draws its own realization)",
                        ));
                    }
                }
            }
        }
        Ok(spec)
    }

    /// Total number of grid points (product of axis lengths; 1 when there
    /// are no axes).
    pub fn total_points(&self) -> usize {
        self.axes.iter().map(Axis::len).product()
    }

    /// Axis assignments of point `index` in row-major order (the last axis
    /// varies fastest), matching nested `for` loops over the axes.
    pub fn assignments_at(&self, index: usize) -> Vec<(String, Value)> {
        let mut rem = index;
        let mut out = Vec::new();
        // Decompose right-to-left, emit left-to-right.
        let mut positions = vec![0usize; self.axes.len()];
        for (i, axis) in self.axes.iter().enumerate().rev() {
            positions[i] = rem % axis.len();
            rem /= axis.len();
        }
        for (axis, &pos) in self.axes.iter().zip(&positions) {
            for (key, v) in axis.keys.iter().zip(&axis.values[pos]) {
                out.push((key.clone(), v.clone()));
            }
        }
        out
    }

    /// The fully-resolved scenario of point `index`: base tree plus that
    /// point's axis assignments.
    pub fn scenario_at(&self, index: usize) -> Result<Scenario, SweepError> {
        let mut tree = self.base.clone();
        for (key, v) in self.assignments_at(index) {
            tree.set(&key, v)
                .map_err(|e| spec_err(format!("axis key `{key}`: {e}")))?;
        }
        Scenario::from_value(&tree)
    }

    /// Deterministic per-point seed: depends only on the master seed and
    /// the point index — never on thread count or execution order.
    pub fn point_seed(&self, index: usize) -> u64 {
        pom_noise::SplitMix64::hash3(self.seed, index as u64, 0x706f_6d2d_7377_6565)
    }

    /// Deterministic per-replica seed. Replica 0 **is** the plain
    /// single-run point — `replica_seed(i, 0) == point_seed(i)` — so a
    /// `replicas = 1` campaign reproduces today's results exactly; higher
    /// replicas hash the point seed with their index (order-independent,
    /// like the point seeds themselves).
    pub fn replica_seed(&self, index: usize, replica: usize) -> u64 {
        let point = self.point_seed(index);
        if replica == 0 {
            point
        } else {
            pom_noise::SplitMix64::hash3(point, replica as u64, 0x706f_6d2d_7265_706c)
        }
    }

    /// The result columns this campaign emits per point, in output order:
    /// the plain observable names for `replicas = 1`, or the four
    /// aggregate columns `<obs>_mean`/`<obs>_ci95`/`<obs>_min`/`<obs>_max`
    /// per observable for a replicated campaign.
    pub fn observable_columns(&self) -> Vec<String> {
        if self.replicas <= 1 {
            self.observables
                .iter()
                .map(|o| o.name().to_string())
                .collect()
        } else {
            self.observables
                .iter()
                .flat_map(|o| {
                    let name = o.name();
                    ["mean", "ci95", "min", "max"]
                        .into_iter()
                        .map(move |suffix| format!("{name}_{suffix}"))
                })
                .collect()
        }
    }
}

fn default_observables(root: &Value) -> Vec<Observable> {
    if workload_kind(root) == "mpisim" {
        vec![Observable::Makespan]
    } else {
        vec![
            Observable::FinalOrderParameter,
            Observable::FinalPhaseSpread,
        ]
    }
}

fn workload_kind(root: &Value) -> &str {
    root.get("campaign.workload")
        .and_then(Value::as_str)
        .unwrap_or(if root.get("mpisim").is_some() {
            "mpisim"
        } else {
            "model"
        })
}

fn parse_axis(v: &Value) -> Result<Axis, SweepError> {
    let t = v
        .as_table()
        .ok_or_else(|| spec_err("each [[axes]] entry must be a table"))?;
    check_keys(t, &["key", "keys", "values", "grid"], "axes")?;

    let keys: Vec<String> = if let Some(k) = t.get("key") {
        vec![k
            .as_str()
            .ok_or_else(|| spec_err("axis `key` must be a string"))?
            .to_string()]
    } else if let Some(ks) = t.get("keys") {
        ks.as_array()
            .ok_or_else(|| spec_err("axis `keys` must be an array of strings"))?
            .iter()
            .map(|k| {
                k.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| spec_err("axis `keys` entries must be strings"))
            })
            .collect::<Result<_, _>>()?
    } else {
        return Err(spec_err("axis needs `key` or `keys`"));
    };

    let values: Vec<Vec<Value>> = if let Some(g) = t.get("grid") {
        if keys.len() != 1 {
            return Err(spec_err("`grid` axes take a single `key`"));
        }
        let start = g
            .get("start")
            .and_then(Value::as_f64)
            .ok_or_else(|| spec_err("grid.start must be a number"))?;
        let stop = g
            .get("stop")
            .and_then(Value::as_f64)
            .ok_or_else(|| spec_err("grid.stop must be a number"))?;
        let steps = g
            .get("steps")
            .and_then(Value::as_i64)
            .ok_or_else(|| spec_err("grid.steps must be an integer"))?;
        if steps < 1 {
            return Err(spec_err("grid.steps must be ≥ 1"));
        }
        let log = g.get("log").and_then(Value::as_bool).unwrap_or(false);
        linspace(start, stop, steps as usize, log)?
            .into_iter()
            .map(|x| vec![Value::Float(x)])
            .collect()
    } else if let Some(vs) = t.get("values") {
        let arr = vs
            .as_array()
            .ok_or_else(|| spec_err("axis `values` must be an array"))?;
        arr.iter()
            .map(|entry| {
                if keys.len() == 1 {
                    Ok(vec![entry.clone()])
                } else {
                    let tuple = entry.as_array().ok_or_else(|| {
                        spec_err("zipped-axis `values` entries must be arrays (one per key)")
                    })?;
                    if tuple.len() != keys.len() {
                        return Err(spec_err(format!(
                            "zipped-axis entry has {} values for {} keys",
                            tuple.len(),
                            keys.len()
                        )));
                    }
                    Ok(tuple.to_vec())
                }
            })
            .collect::<Result<_, _>>()?
    } else {
        return Err(spec_err("axis needs `values` or `grid`"));
    };

    if values.is_empty() {
        return Err(spec_err(format!("axis `{}` has no values", keys.join(","))));
    }
    Ok(Axis { keys, values })
}

fn linspace(start: f64, stop: f64, steps: usize, log: bool) -> Result<Vec<f64>, SweepError> {
    if steps == 1 {
        return Ok(vec![start]);
    }
    if log && (start <= 0.0 || stop <= 0.0) {
        return Err(spec_err("log grids need positive start/stop"));
    }
    Ok((0..steps)
        .map(|k| {
            let f = k as f64 / (steps - 1) as f64;
            if log {
                (start.ln() + f * (stop.ln() - start.ln())).exp()
            } else {
                start + f * (stop - start)
            }
        })
        .collect())
}

fn check_keys(t: &BTreeMap<String, Value>, allowed: &[&str], ctx: &str) -> Result<(), SweepError> {
    for k in t.keys() {
        if !allowed.contains(&k.as_str()) {
            return Err(spec_err(format!(
                "unknown key `{ctx}.{k}` (allowed: {})",
                allowed.join(", ")
            )));
        }
    }
    Ok(())
}

/// Validate one spec section against its registry table: key names and
/// value kinds come from the same [`crate::registry::ArgSpec`] tables
/// the CLI and the HTTP API parse with, so all three surfaces accept
/// and reject the same keys.
fn check_section(
    t: &BTreeMap<String, Value>,
    name: &str,
    workload: &str,
) -> Result<(), SweepError> {
    crate::registry::toolkit()
        .section(name, workload)
        .unwrap_or_else(|| panic!("section `{name}` ({workload}) is not registered"))
        .check(t)
        .map_err(spec_err)
}

// ---------------------------------------------------------------------------
// Resolved scenarios
// ---------------------------------------------------------------------------

/// Wave-fit parameters shared by both substrates.
#[derive(Debug, Clone, Copy)]
pub struct WaveFit {
    /// First-deviation threshold (radians for the model, seconds for the
    /// simulator).
    pub threshold: f64,
    /// Fit source rank; defaults to the injection rank.
    pub source: Option<usize>,
    /// Maximum rank distance entering the fit; defaults to `n/2 − 2`.
    pub max_distance: Option<usize>,
}

/// Injected one-off delay for the model substrate.
#[derive(Debug, Clone, Copy)]
pub struct ModelInject {
    /// Delayed rank.
    pub rank: usize,
    /// Window start.
    pub t_start: f64,
    /// Window length.
    pub duration: f64,
    /// Extra cycle time while inside the window.
    pub extra: f64,
}

/// A fully-resolved oscillator-model scenario (one grid point).
#[derive(Debug, Clone)]
pub struct ModelScenario {
    /// Oscillator count.
    pub n: usize,
    /// Interaction potential.
    pub potential: Potential,
    /// Compute phase duration.
    pub tcomp: f64,
    /// Communication phase duration.
    pub tcomm: f64,
    /// Explicit coupling `v_p` (else κ/β defaults apply).
    pub coupling: Option<f64>,
    /// Explicit distance weight κ.
    pub kappa: Option<f64>,
    /// Coupling normalization.
    pub normalization: Normalization,
    /// RHS kernel selection (`exact` reference vs `sincos` fast path).
    pub kernel: RhsKernel,
    /// Intra-run RHS threads (1 = serial, 0 = all cores). Composes with
    /// the campaign worker pool; keep at 1 unless points are so large
    /// that one run must span cores.
    pub rhs_threads: usize,
    /// Communication topology.
    pub topology: Topology,
    /// Initial condition kind (seed resolved per point).
    pub init: InitSpec,
    /// White-jitter noise amplitude, if any (seed resolved per point).
    pub noise_sigma: Option<f64>,
    /// Pinned noise seed (overrides per-point derivation).
    pub noise_seed: Option<u64>,
    /// One-off injected delay, if any.
    pub inject: Option<ModelInject>,
    /// Integration span.
    pub t_end: f64,
    /// Output samples.
    pub samples: usize,
    /// Explicit solver selection (`sim.solver`/`sim.h`); `None` keeps the
    /// model's automatic choice.
    pub solver: Option<SolverChoice>,
    /// Wave-fit parameters.
    pub wave: WaveFit,
}

/// Initial condition with the seed left symbolic.
#[derive(Debug, Clone, Copy)]
pub enum InitSpec {
    /// Lockstep start.
    Synchronized,
    /// Random spread; `seed = None` derives from the point seed.
    Spread {
        /// Spread amplitude (radians).
        amplitude: f64,
        /// Pinned seed, if any.
        seed: Option<u64>,
    },
    /// Linear wavefront.
    Wavefront {
        /// Per-rank slope (radians).
        slope: f64,
    },
}

impl ModelScenario {
    /// Resolve the initial condition using the per-point seed where the
    /// spec did not pin one.
    pub fn initial_condition(&self, point_seed: u64) -> InitialCondition {
        match self.init {
            InitSpec::Synchronized => InitialCondition::Synchronized,
            InitSpec::Spread { amplitude, seed } => InitialCondition::RandomSpread {
                amplitude,
                seed: seed.unwrap_or(point_seed),
            },
            InitSpec::Wavefront { slope } => InitialCondition::Wavefront { slope },
        }
    }

    /// Build the model; `with_inject = false` yields the baseline twin
    /// used by wave-speed observables (noise kept, injection dropped).
    pub fn build(&self, point_seed: u64, with_inject: bool) -> Result<Pom, SweepError> {
        let mut b = PomBuilder::new(self.n)
            .topology(self.topology.clone())
            .potential(self.potential)
            .compute_time(self.tcomp)
            .comm_time(self.tcomm)
            .normalization(self.normalization)
            .kernel(self.kernel)
            .rhs_threads(self.rhs_threads);
        if let Some(vp) = self.coupling {
            b = b.coupling(vp);
        }
        if let Some(k) = self.kappa {
            b = b.kappa(k);
        }
        let mut noise = SumNoise::new();
        let mut any_noise = false;
        if let Some(sigma) = self.noise_sigma {
            let seed = self
                .noise_seed
                .unwrap_or_else(|| pom_noise::SplitMix64::mix(point_seed ^ 0x6e6f_6973_6500_0000));
            noise = noise.with(WhiteJitter::new(
                seed,
                sigma,
                (self.tcomp + self.tcomm) / 2.0,
            ));
            any_noise = true;
        }
        if with_inject {
            if let Some(inj) = self.inject {
                noise = noise.with(OneOffDelays::new(vec![DelayEvent {
                    rank: inj.rank,
                    t_start: inj.t_start,
                    duration: inj.duration,
                    extra: inj.extra,
                }]));
                any_noise = true;
            }
        }
        if any_noise {
            b = b.local_noise(noise);
        }
        b.build().map_err(|e| SweepError::Run(e.to_string()))
    }

    /// Simulation options for this scenario.
    pub fn sim_options(&self) -> SimOptions {
        let opts = SimOptions::new(self.t_end).samples(self.samples);
        match self.solver {
            Some(s) => opts.solver(s),
            None => opts,
        }
    }

    /// Effective wave-fit source rank.
    pub fn wave_source(&self) -> usize {
        self.wave
            .source
            .or(self.inject.map(|i| i.rank))
            .unwrap_or(0)
    }

    /// Effective wave-fit maximum distance.
    pub fn wave_max_distance(&self) -> usize {
        self.wave
            .max_distance
            .unwrap_or((self.n / 2).saturating_sub(2).max(1))
    }
}

/// A fully-resolved discrete-event simulator scenario (one grid point).
#[derive(Debug, Clone)]
pub struct MpiScenario {
    /// Rank count.
    pub n: usize,
    /// Iteration count.
    pub iterations: usize,
    /// Compute kernel.
    pub kernel: Kernel,
    /// Per-iteration un-contended compute target, seconds.
    pub work_seconds: f64,
    /// Halo distance set.
    pub distances: Vec<i32>,
    /// Point-to-point protocol.
    pub protocol: MpiProtocol,
    /// Message payload override.
    pub message_bytes: Option<usize>,
    /// Allreduce cadence, if any.
    pub allreduce_every: Option<usize>,
    /// Compute-noise amplitude (relative), if any.
    pub noise_sigma: Option<f64>,
    /// Pinned noise seed.
    pub noise_seed: Option<u64>,
    /// Injected delay, if any.
    pub inject: Option<SimDelay>,
    /// Wave-fit parameters (threshold in seconds).
    pub wave: WaveFit,
}

impl MpiScenario {
    /// Assemble the `ProgramSpec`; `with_inject = false` gives the
    /// baseline twin.
    pub fn program(&self, point_seed: u64, with_inject: bool) -> ProgramSpec {
        let mut p = ProgramSpec::new(self.n, self.iterations)
            .kernel(self.kernel)
            .work(WorkSpec::TargetSeconds(self.work_seconds))
            .distances(self.distances.clone())
            .protocol(self.protocol);
        if let Some(bytes) = self.message_bytes {
            p = p.message_bytes(bytes);
        }
        if let Some(k) = self.allreduce_every {
            p = p.allreduce_every(k);
        }
        if let Some(sigma) = self.noise_sigma {
            let seed = self
                .noise_seed
                .unwrap_or_else(|| pom_noise::SplitMix64::mix(point_seed ^ 0x6e6f_6973_6500_0000));
            p = p.noise(sigma, seed);
        }
        if with_inject {
            if let Some(inj) = self.inject {
                p = p.inject(inj);
            }
        }
        p
    }

    /// Effective wave-fit source rank.
    pub fn wave_source(&self) -> usize {
        self.wave
            .source
            .or(self.inject.map(|i| i.rank))
            .unwrap_or(0)
    }

    /// Effective wave-fit maximum distance.
    pub fn wave_max_distance(&self) -> usize {
        self.wave
            .max_distance
            .unwrap_or((self.n / 2).saturating_sub(2).max(1))
    }
}

/// One grid point, resolved to a runnable workload.
#[derive(Debug, Clone)]
pub enum Scenario {
    /// Oscillator-model run.
    Model(Box<ModelScenario>),
    /// Discrete-event simulator run.
    MpiSim(Box<MpiScenario>),
}

impl Scenario {
    /// Resolve a merged scenario tree.
    pub fn from_value(tree: &Value) -> Result<Self, SweepError> {
        match workload_kind(tree) {
            "mpisim" => Ok(Scenario::MpiSim(Box::new(mpisim_from_value(tree)?))),
            "model" => Ok(Scenario::Model(Box::new(model_from_value(tree)?))),
            other => Err(spec_err(format!("unknown campaign.workload `{other}`"))),
        }
    }
}

fn get_f64(tree: &Value, path: &str, default: f64) -> Result<f64, SweepError> {
    match tree.get(path) {
        None => Ok(default),
        Some(v) => v
            .as_f64()
            .ok_or_else(|| spec_err(format!("`{path}` must be a number"))),
    }
}

fn get_usize(tree: &Value, path: &str, default: usize) -> Result<usize, SweepError> {
    match tree.get(path) {
        None => Ok(default),
        Some(v) => v
            .as_i64()
            .filter(|i| *i >= 0)
            .map(|i| i as usize)
            .ok_or_else(|| spec_err(format!("`{path}` must be a non-negative integer"))),
    }
}

fn get_opt_f64(tree: &Value, path: &str) -> Result<Option<f64>, SweepError> {
    tree.get(path)
        .map(|v| {
            v.as_f64()
                .ok_or_else(|| spec_err(format!("`{path}` must be a number")))
        })
        .transpose()
}

fn get_opt_u64(tree: &Value, path: &str) -> Result<Option<u64>, SweepError> {
    tree.get(path)
        .map(|v| {
            v.as_i64()
                .filter(|i| *i >= 0)
                .map(|i| i as u64)
                .ok_or_else(|| spec_err(format!("`{path}` must be a non-negative integer")))
        })
        .transpose()
}

fn get_opt_usize(tree: &Value, path: &str) -> Result<Option<usize>, SweepError> {
    Ok(get_opt_u64(tree, path)?.map(|v| v as usize))
}

fn get_str<'a>(tree: &'a Value, path: &str, default: &'a str) -> &'a str {
    tree.get(path).and_then(Value::as_str).unwrap_or(default)
}

fn get_distances(tree: &Value, path: &str, default: &[i32]) -> Result<Vec<i32>, SweepError> {
    match tree.get(path) {
        None => Ok(default.to_vec()),
        Some(v) => v
            .as_array()
            .ok_or_else(|| spec_err(format!("`{path}` must be an array of integers")))?
            .iter()
            .map(|d| {
                d.as_i64()
                    .map(|i| i as i32)
                    .ok_or_else(|| spec_err(format!("`{path}` entries must be integers")))
            })
            .collect(),
    }
}

fn parse_wave(tree: &Value, default_threshold: f64) -> Result<WaveFit, SweepError> {
    if let Some(w) = tree.get("wave").and_then(Value::as_table) {
        check_section(w, "wave", "both")?;
    }
    Ok(WaveFit {
        threshold: get_f64(tree, "wave.threshold", default_threshold)?,
        source: get_opt_usize(tree, "wave.source")?,
        max_distance: get_opt_usize(tree, "wave.max_distance")?,
    })
}

fn model_from_value(tree: &Value) -> Result<ModelScenario, SweepError> {
    if let Some(t) = tree.as_table() {
        check_keys(
            t,
            &[
                "campaign", "model", "topology", "init", "noise", "inject", "sim", "wave",
            ],
            "spec",
        )?;
    }
    if let Some(m) = tree.get("model").and_then(Value::as_table) {
        check_section(m, "model", "model")?;
    }

    let n = get_usize(tree, "model.n", 16)?;
    if n < 2 {
        return Err(spec_err("model.n must be ≥ 2"));
    }
    let sigma = get_f64(tree, "model.sigma", 3.0)?;
    let potential = match get_str(tree, "model.potential", "tanh") {
        "tanh" => Potential::tanh(),
        "desync" => Potential::desync(sigma),
        "sin" | "kuramoto" => Potential::KuramotoSin,
        other => {
            return Err(spec_err(format!(
                "model.potential `{other}` (tanh|desync|sin)"
            )))
        }
    };
    let normalization = match get_str(tree, "model.norm", "degree") {
        "degree" => Normalization::ByDegree,
        "n" => Normalization::ByN,
        other => return Err(spec_err(format!("model.norm `{other}` (degree|n)"))),
    };
    let kernel_name = get_str(tree, "model.kernel", "exact");
    let kernel = RhsKernel::from_name(kernel_name)
        .ok_or_else(|| spec_err(format!("model.kernel `{kernel_name}` (exact|sincos)")))?;
    let rhs_threads = get_usize(tree, "model.rhs_threads", 1)?;

    if let Some(t) = tree.get("topology").and_then(Value::as_table) {
        check_section(t, "topology", "model")?;
    }
    let distances = get_distances(tree, "topology.distances", &[-1, 1])?;
    let topology = match get_str(tree, "topology.kind", "ring") {
        "ring" => Topology::ring(n, &distances),
        "chain" => Topology::chain(n, &distances),
        "all" | "all-to-all" => Topology::all_to_all(n),
        "grid2d" => {
            let nx = get_usize(tree, "topology.nx", 0)?;
            let ny = get_usize(tree, "topology.ny", 0)?;
            if nx * ny != n {
                return Err(spec_err(format!(
                    "grid2d topology needs nx*ny == model.n ({nx}×{ny} != {n})"
                )));
            }
            let periodic = tree
                .get("topology.periodic")
                .map(|v| {
                    v.as_bool()
                        .ok_or_else(|| spec_err("topology.periodic must be a bool"))
                })
                .transpose()?
                .unwrap_or(false);
            Topology::grid2d(nx, ny, periodic)
        }
        other => {
            return Err(spec_err(format!(
                "topology.kind `{other}` (ring|chain|all-to-all|grid2d)"
            )))
        }
    };

    if let Some(t) = tree.get("init").and_then(Value::as_table) {
        check_section(t, "init", "model")?;
    }
    let init = match get_str(tree, "init.kind", "spread") {
        "sync" => InitSpec::Synchronized,
        "spread" => InitSpec::Spread {
            amplitude: get_f64(tree, "init.amplitude", 1.0)?,
            seed: get_opt_u64(tree, "init.seed")?,
        },
        "wavefront" => InitSpec::Wavefront {
            slope: get_f64(tree, "init.slope", 0.5)?,
        },
        other => {
            return Err(spec_err(format!(
                "init.kind `{other}` (sync|spread|wavefront)"
            )))
        }
    };

    if let Some(t) = tree.get("noise").and_then(Value::as_table) {
        check_section(t, "noise", "model")?;
    }
    if let Some(t) = tree.get("inject").and_then(Value::as_table) {
        check_section(t, "inject", "model")?;
    }
    let tcomp = get_f64(tree, "model.tcomp", 0.9)?;
    let tcomm = get_f64(tree, "model.tcomm", 0.1)?;
    let inject = match tree.get("inject") {
        None => None,
        Some(_) => {
            let rank = get_usize(tree, "inject.rank", 0)?;
            if rank >= n {
                return Err(spec_err(format!(
                    "inject.rank {rank} out of range (n = {n})"
                )));
            }
            Some(ModelInject {
                rank,
                t_start: get_f64(tree, "inject.at", 2.0)?,
                duration: get_f64(tree, "inject.len", 3.0)?,
                extra: get_f64(tree, "inject.extra", tcomp + tcomm)?,
            })
        }
    };

    if let Some(t) = tree.get("sim").and_then(Value::as_table) {
        check_section(t, "sim", "model")?;
    }
    let h = get_opt_f64(tree, "sim.h")?;
    let solver = match tree.get("sim.solver").map(|v| {
        v.as_str()
            .ok_or_else(|| spec_err("sim.solver must be a string"))
    }) {
        None => None,
        Some(name) => match name? {
            "auto" => None,
            "dopri5" => Some(SolverChoice::Dopri5 {
                rtol: 1e-8,
                atol: 1e-10,
            }),
            "rk4" => {
                let h = h.ok_or_else(|| {
                    spec_err("sim.solver = \"rk4\" needs an explicit step `sim.h`")
                })?;
                if !(h.is_finite() && h > 0.0) {
                    return Err(spec_err("sim.h must be a positive finite number"));
                }
                Some(SolverChoice::FixedRk4 { h })
            }
            other => return Err(spec_err(format!("sim.solver `{other}` (auto|dopri5|rk4)"))),
        },
    };
    if h.is_some() && !matches!(solver, Some(SolverChoice::FixedRk4 { .. })) {
        return Err(spec_err("sim.h only applies with sim.solver = \"rk4\""));
    }

    Ok(ModelScenario {
        n,
        potential,
        tcomp,
        tcomm,
        coupling: get_opt_f64(tree, "model.coupling")?,
        kappa: get_opt_f64(tree, "model.kappa")?,
        normalization,
        kernel,
        rhs_threads,
        topology,
        init,
        noise_sigma: get_opt_f64(tree, "noise.sigma")?,
        noise_seed: get_opt_u64(tree, "noise.seed")?,
        inject,
        t_end: get_f64(tree, "sim.t_end", 100.0)?,
        samples: get_usize(tree, "sim.samples", 400)?,
        solver,
        wave: parse_wave(tree, 0.05)?,
    })
}

fn mpisim_from_value(tree: &Value) -> Result<MpiScenario, SweepError> {
    if let Some(t) = tree.as_table() {
        check_keys(
            t,
            &["campaign", "mpisim", "noise", "inject", "wave"],
            "spec",
        )?;
    }
    if let Some(m) = tree.get("mpisim").and_then(Value::as_table) {
        check_section(m, "mpisim", "mpisim")?;
    }

    let n = get_usize(tree, "mpisim.n", 16)?;
    if n < 2 {
        return Err(spec_err("mpisim.n must be ≥ 2"));
    }
    let kernel = match get_str(tree, "mpisim.kernel", "pisolver") {
        "pisolver" => Kernel::pisolver(),
        "stream" | "stream_triad" => Kernel::stream_triad(),
        "schoenauer" | "schoenauer_slow" => Kernel::schoenauer_slow(),
        other => {
            return Err(spec_err(format!(
                "mpisim.kernel `{other}` (pisolver|stream|schoenauer)"
            )))
        }
    };
    let protocol = match get_str(tree, "mpisim.protocol", "eager") {
        "eager" => MpiProtocol::Eager,
        "rendezvous" => MpiProtocol::Rendezvous,
        other => {
            return Err(spec_err(format!(
                "mpisim.protocol `{other}` (eager|rendezvous)"
            )))
        }
    };

    if let Some(t) = tree.get("noise").and_then(Value::as_table) {
        check_section(t, "noise", "mpisim")?;
    }
    if let Some(t) = tree.get("inject").and_then(Value::as_table) {
        check_section(t, "inject", "mpisim")?;
    }
    let inject = match tree.get("inject") {
        None => None,
        Some(_) => {
            let rank = get_usize(tree, "inject.rank", 0)?;
            if rank >= n {
                return Err(spec_err(format!(
                    "inject.rank {rank} out of range (n = {n})"
                )));
            }
            Some(SimDelay {
                rank,
                iteration: get_usize(tree, "inject.iteration", 4)?,
                extra_seconds: get_f64(tree, "inject.extra_seconds", 5e-3)?,
            })
        }
    };

    Ok(MpiScenario {
        n,
        iterations: get_usize(tree, "mpisim.iterations", 36)?,
        kernel,
        work_seconds: get_f64(tree, "mpisim.work_seconds", 1e-3)?,
        distances: get_distances(tree, "mpisim.distances", &[-1, 1])?,
        protocol,
        message_bytes: get_opt_usize(tree, "mpisim.message_bytes")?,
        allreduce_every: get_opt_usize(tree, "mpisim.allreduce_every")?,
        noise_sigma: get_opt_f64(tree, "noise.sigma")?,
        noise_seed: get_opt_u64(tree, "noise.seed")?,
        inject,
        wave: parse_wave(tree, 2e-3)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: &str = r#"
        [campaign]
        name = "t"
        seed = 9
        observables = ["final_r", "mean_abs_gap"]
        [model]
        n = 8
        potential = "desync"
        sigma = 2.0
        [topology]
        kind = "chain"
        [sim]
        t_end = 10.0
        samples = 20
        [[axes]]
        key = "model.sigma"
        values = [1.0, 2.0, 3.0]
        [[axes]]
        key = "model.coupling"
        values = [2.0, 4.0]
    "#;

    #[test]
    fn parse_and_expand() {
        let spec = CampaignSpec::parse(SPEC).unwrap();
        assert_eq!(spec.name, "t");
        assert_eq!(spec.seed, 9);
        assert_eq!(spec.total_points(), 6);
        // Row-major: last axis fastest.
        let a0 = spec.assignments_at(0);
        let a1 = spec.assignments_at(1);
        let a2 = spec.assignments_at(2);
        assert_eq!(a0[0].1.as_f64(), Some(1.0));
        assert_eq!(a0[1].1.as_f64(), Some(2.0));
        assert_eq!(a1[0].1.as_f64(), Some(1.0));
        assert_eq!(a1[1].1.as_f64(), Some(4.0));
        assert_eq!(a2[0].1.as_f64(), Some(2.0));
    }

    #[test]
    fn scenario_reflects_assignments() {
        let spec = CampaignSpec::parse(SPEC).unwrap();
        let Scenario::Model(s) = spec.scenario_at(5).unwrap() else {
            panic!("model")
        };
        assert_eq!(s.potential, Potential::desync(3.0));
        assert_eq!(s.coupling, Some(4.0));
        assert_eq!(s.n, 8);
    }

    #[test]
    fn point_seed_depends_on_index_only() {
        let spec = CampaignSpec::parse(SPEC).unwrap();
        assert_eq!(spec.point_seed(3), spec.point_seed(3));
        assert_ne!(spec.point_seed(3), spec.point_seed(4));
    }

    #[test]
    fn unknown_keys_are_rejected() {
        let e = CampaignSpec::parse("[model]\nsgima = 2.0").unwrap_err();
        assert!(e.to_string().contains("sgima"), "{e}");
        let e = CampaignSpec::parse("[campaign]\nobservables = [\"nope\"]").unwrap_err();
        assert!(e.to_string().contains("nope"), "{e}");
    }

    #[test]
    fn grid_axis_expands_linspace() {
        let spec = CampaignSpec::parse(
            "[[axes]]\nkey = \"model.coupling\"\ngrid = { start = 1.0, stop = 3.0, steps = 3 }",
        )
        .unwrap();
        assert_eq!(spec.total_points(), 3);
        let vals: Vec<f64> = (0..3)
            .map(|i| spec.assignments_at(i)[0].1.as_f64().unwrap())
            .collect();
        assert_eq!(vals, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn zipped_axis_applies_tuples() {
        let spec = CampaignSpec::parse(
            r#"
            [campaign]
            workload = "mpisim"
            [mpisim]
            n = 8
            iterations = 4
            [[axes]]
            keys = ["mpisim.distances", "mpisim.protocol"]
            values = [[[-1, 1], "eager"], [[-2, -1, 1], "rendezvous"]]
            "#,
        )
        .unwrap();
        assert_eq!(spec.total_points(), 2);
        let Scenario::MpiSim(s) = spec.scenario_at(1).unwrap() else {
            panic!("mpisim")
        };
        assert_eq!(s.distances, vec![-2, -1, 1]);
        assert_eq!(s.protocol, MpiProtocol::Rendezvous);
    }

    #[test]
    fn kernel_and_rhs_threads_keys_resolve() {
        let spec = CampaignSpec::parse(
            r#"
            [model]
            n = 8
            potential = "sin"
            kernel = "sincos"
            rhs_threads = 2
            [sim]
            t_end = 4.0
            "#,
        )
        .unwrap();
        let Scenario::Model(s) = spec.scenario_at(0).unwrap() else {
            panic!("model")
        };
        assert_eq!(s.kernel, RhsKernel::SinCosSplit);
        assert_eq!(s.rhs_threads, 2);
        // Defaults: exact reference kernel, serial RHS.
        let spec = CampaignSpec::parse("[model]\nn = 4").unwrap();
        let Scenario::Model(s) = spec.scenario_at(0).unwrap() else {
            panic!("model")
        };
        assert_eq!(s.kernel, RhsKernel::Exact);
        assert_eq!(s.rhs_threads, 1);
        // Unknown kernel names fail loudly.
        let e = CampaignSpec::parse("[model]\nkernel = \"quux\"").unwrap_err();
        assert!(e.to_string().contains("quux"), "{e}");
        // The kernel is sweepable like any other scenario key.
        let spec = CampaignSpec::parse(
            "[model]\nn = 4\n[[axes]]\nkey = \"model.kernel\"\nvalues = [\"exact\", \"sincos\"]",
        )
        .unwrap();
        let Scenario::Model(s) = spec.scenario_at(1).unwrap() else {
            panic!("model")
        };
        assert_eq!(s.kernel, RhsKernel::SinCosSplit);
    }

    #[test]
    fn mpisim_workload_detected_without_explicit_kind() {
        let spec = CampaignSpec::parse("[mpisim]\nn = 4\niterations = 2").unwrap();
        assert!(matches!(spec.scenario_at(0).unwrap(), Scenario::MpiSim(_)));
        assert_eq!(spec.observables, vec![Observable::Makespan]);
    }

    #[test]
    fn explicit_workload_kind_wins_over_table_presence() {
        // A defaults-only mpisim campaign (no [mpisim] table at all).
        let spec = CampaignSpec::parse("[campaign]\nworkload = \"mpisim\"").unwrap();
        assert!(matches!(spec.scenario_at(0).unwrap(), Scenario::MpiSim(_)));
        assert_eq!(spec.observables, vec![Observable::Makespan]);

        // An explicit model workload does not silently ignore a stray
        // [mpisim] table — it errors on the unknown key.
        let e =
            CampaignSpec::parse("[campaign]\nworkload = \"model\"\n[mpisim]\nn = 4").unwrap_err();
        assert!(e.to_string().contains("mpisim"), "{e}");
    }
}
