//! A small dynamic value tree plus TOML-subset and JSON parsers.
//!
//! Campaign specs arrive as TOML or JSON files. The build environment has
//! no registry access, so instead of `serde`/`toml` this module implements
//! the required subset directly:
//!
//! * **TOML**: `[table]` and `[[array-of-tables]]` headers, `key = value`
//!   pairs with string / integer / float / boolean / single-line array /
//!   inline-table values, and `#` comments.
//! * **JSON**: the full scalar/array/object grammar.
//!
//! [`Value::canonical`] renders any tree into a canonical JSON string
//! (sorted keys, deterministic float formatting) used for content hashing
//! and for the JSONL result stream.

use std::collections::BTreeMap;
use std::fmt;

/// A dynamically typed configuration value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A string.
    Str(String),
    /// An integer (TOML integers, JSON numbers without `.`/exponent).
    Int(i64),
    /// A float.
    Float(f64),
    /// A boolean.
    Bool(bool),
    /// An ordered list.
    Array(Vec<Value>),
    /// A key-sorted table.
    Table(BTreeMap<String, Value>),
}

/// Parse error with a human-readable location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line (TOML) or byte offset (JSON).
    pub at: String,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

impl Value {
    /// Empty table.
    pub fn table() -> Self {
        Value::Table(BTreeMap::new())
    }

    /// Borrow as table.
    pub fn as_table(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Table(t) => Some(t),
            _ => None,
        }
    }

    /// Borrow as array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Borrow as string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric view (integers widen to float).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(x) => Some(*x),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// Integer view (floats with integral value narrow).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Float(x) if x.fract() == 0.0 && x.abs() < 2f64.powi(53) => Some(*x as i64),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Walk a dotted path (`"model.sigma"`) through nested tables.
    pub fn get(&self, path: &str) -> Option<&Value> {
        let mut cur = self;
        for seg in path.split('.') {
            cur = cur.as_table()?.get(seg)?;
        }
        Some(cur)
    }

    /// Set a dotted path, creating intermediate tables. Errors if a
    /// non-table intermediate exists.
    pub fn set(&mut self, path: &str, value: Value) -> Result<(), ParseError> {
        let mut cur = self;
        let segs: Vec<&str> = path.split('.').collect();
        for (i, seg) in segs.iter().enumerate() {
            let table = match cur {
                Value::Table(t) => t,
                _ => {
                    return Err(ParseError {
                        at: path.to_string(),
                        message: format!("`{}` is not a table", segs[..i].join(".")),
                    })
                }
            };
            if i == segs.len() - 1 {
                table.insert(seg.to_string(), value);
                return Ok(());
            }
            cur = table.entry(seg.to_string()).or_insert_with(Value::table);
        }
        unreachable!("empty path");
    }

    /// Canonical JSON rendering: keys sorted (BTreeMap order), floats via
    /// Rust's shortest round-trip formatting, non-finite floats as `null`.
    /// Identical trees always render identically — the basis for the
    /// campaign content hash and for bitwise-reproducible JSONL output.
    pub fn canonical(&self) -> String {
        let mut out = String::new();
        self.write_canonical(&mut out);
        out
    }

    fn write_canonical(&self, out: &mut String) {
        match self {
            Value::Str(s) => write_json_str(s, out),
            Value::Int(i) => out.push_str(&i.to_string()),
            Value::Float(x) => out.push_str(&format_f64(*x)),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Array(a) => {
                out.push('[');
                for (i, v) in a.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write_canonical(out);
                }
                out.push(']');
            }
            Value::Table(t) => {
                out.push('{');
                for (i, (k, v)) in t.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_str(k, out);
                    out.push(':');
                    v.write_canonical(out);
                }
                out.push('}');
            }
        }
    }
}

/// Deterministic JSON number rendering for a float; non-finite → `null`.
pub fn format_f64(x: f64) -> String {
    if !x.is_finite() {
        return "null".to_string();
    }
    // Rust's Display for f64 is the shortest round-trip decimal, which is
    // fully deterministic; "2" (not "2.0") is still a valid JSON number.
    format!("{x}")
}

/// JSON string escape.
pub fn write_json_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// FNV-1a over a byte string — the campaign content hash.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Auto-detect TOML vs JSON (JSON documents start with `{`).
pub fn parse_auto(text: &str) -> Result<Value, ParseError> {
    if text.trim_start().starts_with('{') {
        parse_json(text)
    } else {
        parse_toml(text)
    }
}

// ---------------------------------------------------------------------------
// TOML subset
// ---------------------------------------------------------------------------

/// Parse the TOML subset described in the module docs.
pub fn parse_toml(text: &str) -> Result<Value, ParseError> {
    let mut root = Value::table();
    // Path of the table currently receiving keys.
    let mut current: Vec<String> = Vec::new();

    let mut lines = text.lines().enumerate();
    while let Some((lineno, raw)) = lines.next() {
        let mut line = strip_comment(raw).trim().to_string();
        let err = |message: String| ParseError {
            at: format!("line {}", lineno + 1),
            message,
        };
        if line.is_empty() {
            continue;
        }
        // Multi-line arrays/inline tables: keep consuming lines until the
        // brackets opened on this line are balanced again.
        while bracket_depth(&line) > 0 {
            let Some((_, next)) = lines.next() else {
                return Err(err(format!("unterminated value starting at `{line}`")));
            };
            line.push(' ');
            line.push_str(strip_comment(next).trim());
        }
        let line = line.as_str();
        if let Some(header) = line.strip_prefix("[[").and_then(|l| l.strip_suffix("]]")) {
            let path: Vec<String> = header
                .trim()
                .split('.')
                .map(|s| s.trim().to_string())
                .collect();
            push_array_table(&mut root, &path)
                .map_err(|m| err(format!("bad array-of-tables header: {m}")))?;
            current = path;
            current.push(String::new()); // marker: inside the last array element
        } else if let Some(header) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            let path: Vec<String> = header
                .trim()
                .split('.')
                .map(|s| s.trim().to_string())
                .collect();
            if path.iter().any(|s| s.is_empty()) {
                return Err(err(format!("bad table header `{line}`")));
            }
            ensure_table(&mut root, &path).map_err(|m| err(format!("bad table header: {m}")))?;
            current = path;
        } else if let Some((key, rest)) = line.split_once('=') {
            let key = key.trim();
            if key.is_empty() || key.contains(' ') {
                return Err(err(format!("bad key `{key}`")));
            }
            let value = parse_toml_value(rest.trim()).map_err(err)?;
            let target = resolve_mut(&mut root, &current)
                .ok_or_else(|| err("internal: lost current table".to_string()))?;
            let Value::Table(t) = target else {
                return Err(err("current header is not a table".to_string()));
            };
            if t.insert(key.to_string(), value).is_some() {
                return Err(err(format!("duplicate key `{key}`")));
            }
        } else {
            return Err(err(format!(
                "expected `key = value` or `[table]`, got `{line}`"
            )));
        }
    }
    Ok(root)
}

/// Net `[`/`{` minus `]`/`}` outside strings (positive ⇒ line continues).
fn bracket_depth(line: &str) -> i32 {
    let mut depth = 0i32;
    let mut in_str = false;
    for c in line.chars() {
        match c {
            '"' => in_str = !in_str,
            '[' | '{' if !in_str => depth += 1,
            ']' | '}' if !in_str => depth -= 1,
            _ => {}
        }
    }
    depth
}

fn strip_comment(line: &str) -> &str {
    // A `#` outside a basic string starts a comment.
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn ensure_table(root: &mut Value, path: &[String]) -> Result<(), String> {
    let mut cur = root;
    for seg in path {
        let t = match cur {
            Value::Table(t) => t,
            Value::Array(a) => match a.last_mut() {
                Some(Value::Table(t)) => t,
                _ => return Err(format!("`{seg}` addresses a non-table array element")),
            },
            _ => return Err(format!("`{seg}` is not a table")),
        };
        cur = t.entry(seg.clone()).or_insert_with(Value::table);
    }
    Ok(())
}

fn push_array_table(root: &mut Value, path: &[String]) -> Result<(), String> {
    let (last, prefix) = path.split_last().ok_or("empty header")?;
    let mut cur = root;
    for seg in prefix {
        let t = cur.as_table().is_some();
        if !t {
            return Err(format!("`{seg}` is not a table"));
        }
        let Value::Table(table) = cur else {
            unreachable!()
        };
        cur = table.entry(seg.clone()).or_insert_with(Value::table);
    }
    let Value::Table(table) = cur else {
        return Err("array-of-tables parent is not a table".to_string());
    };
    let arr = table
        .entry(last.clone())
        .or_insert_with(|| Value::Array(Vec::new()));
    let Value::Array(a) = arr else {
        return Err(format!("`{last}` exists and is not an array"));
    };
    a.push(Value::table());
    Ok(())
}

/// Walk `path` where a trailing empty segment means "last element of the
/// array-of-tables addressed by the preceding segments".
fn resolve_mut<'a>(root: &'a mut Value, path: &[String]) -> Option<&'a mut Value> {
    let mut cur = root;
    for seg in path {
        if seg.is_empty() {
            let Value::Array(a) = cur else { return None };
            cur = a.last_mut()?;
        } else {
            let Value::Table(t) = cur else { return None };
            cur = t.get_mut(seg)?;
        }
    }
    Some(cur)
}

fn parse_toml_value(s: &str) -> Result<Value, String> {
    let s = s.trim();
    if s.is_empty() {
        return Err("missing value".to_string());
    }
    if let Some(rest) = s.strip_prefix('"') {
        let inner = rest
            .strip_suffix('"')
            .ok_or_else(|| format!("unterminated string `{s}`"))?;
        return Ok(Value::Str(unescape(inner)?));
    }
    if s == "true" {
        return Ok(Value::Bool(true));
    }
    if s == "false" {
        return Ok(Value::Bool(false));
    }
    if s.starts_with('[') {
        let inner = s
            .strip_prefix('[')
            .and_then(|x| x.strip_suffix(']'))
            .ok_or_else(|| format!("unterminated array `{s}`"))?;
        return Ok(Value::Array(
            split_top_level(inner)?
                .into_iter()
                .map(|item| parse_toml_value(item.trim()))
                .collect::<Result<_, _>>()?,
        ));
    }
    if s.starts_with('{') {
        let inner = s
            .strip_prefix('{')
            .and_then(|x| x.strip_suffix('}'))
            .ok_or_else(|| format!("unterminated inline table `{s}`"))?;
        let mut t = BTreeMap::new();
        for item in split_top_level(inner)? {
            let item = item.trim();
            if item.is_empty() {
                continue;
            }
            let (k, v) = item
                .split_once('=')
                .ok_or_else(|| format!("inline table entry `{item}` is not key = value"))?;
            t.insert(k.trim().to_string(), parse_toml_value(v.trim())?);
        }
        return Ok(Value::Table(t));
    }
    parse_number(s)
}

/// Split on top-level commas (ignoring commas nested in `[]`/`{}`/strings).
fn split_top_level(s: &str) -> Result<Vec<&str>, String> {
    let mut parts = Vec::new();
    let (mut depth, mut in_str, mut start) = (0i32, false, 0usize);
    for (i, c) in s.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '[' | '{' if !in_str => depth += 1,
            ']' | '}' if !in_str => depth -= 1,
            ',' if !in_str && depth == 0 => {
                parts.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    if depth != 0 || in_str {
        return Err(format!("unbalanced brackets in `{s}`"));
    }
    if !s[start..].trim().is_empty() {
        parts.push(&s[start..]);
    }
    Ok(parts)
}

fn unescape(s: &str) -> Result<String, String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('t') => out.push('\t'),
            Some('r') => out.push('\r'),
            Some('"') => out.push('"'),
            Some('\\') => out.push('\\'),
            Some('u') => {
                let hex: String = chars.by_ref().take(4).collect();
                let code =
                    u32::from_str_radix(&hex, 16).map_err(|_| format!("bad \\u escape `{hex}`"))?;
                out.push(char::from_u32(code).ok_or_else(|| format!("bad codepoint {code}"))?);
            }
            other => return Err(format!("bad escape `\\{}`", other.unwrap_or(' '))),
        }
    }
    Ok(out)
}

/// Parse the spec-file number grammar (`3`, `3.0`, `1.5e-3`, `1_000`)
/// into an [`Value::Int`]/[`Value::Float`] — shared with the typed
/// `key=value` argument layer so every input surface types numbers the
/// same way.
pub(crate) fn parse_number(s: &str) -> Result<Value, String> {
    let cleaned = s.replace('_', "");
    if !cleaned.contains(['.', 'e', 'E']) || cleaned.starts_with("0x") {
        if let Ok(i) = cleaned.parse::<i64>() {
            return Ok(Value::Int(i));
        }
    }
    cleaned
        .parse::<f64>()
        .map(Value::Float)
        .map_err(|_| format!("`{s}` is not a number, boolean, string, array or inline table"))
}

// ---------------------------------------------------------------------------
// JSON
// ---------------------------------------------------------------------------

/// Parse a JSON document.
pub fn parse_json(text: &str) -> Result<Value, ParseError> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let v = json_value(bytes, &mut pos)?;
    json_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(json_err(pos, "trailing characters"));
    }
    Ok(v)
}

fn json_err(pos: usize, message: &str) -> ParseError {
    ParseError {
        at: format!("offset {pos}"),
        message: message.to_string(),
    }
}

fn json_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn json_value(b: &[u8], pos: &mut usize) -> Result<Value, ParseError> {
    json_ws(b, pos);
    match b.get(*pos) {
        None => Err(json_err(*pos, "unexpected end of input")),
        Some(b'{') => {
            *pos += 1;
            let mut t = BTreeMap::new();
            json_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Table(t));
            }
            loop {
                json_ws(b, pos);
                let Value::Str(key) = json_string(b, pos)? else {
                    unreachable!()
                };
                json_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(json_err(*pos, "expected `:`"));
                }
                *pos += 1;
                let v = json_value(b, pos)?;
                t.insert(key, v);
                json_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Table(t));
                    }
                    _ => return Err(json_err(*pos, "expected `,` or `}`")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut a = Vec::new();
            json_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(a));
            }
            loop {
                a.push(json_value(b, pos)?);
                json_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(a));
                    }
                    _ => return Err(json_err(*pos, "expected `,` or `]`")),
                }
            }
        }
        Some(b'"') => json_string(b, pos),
        Some(b't') if b[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Value::Bool(true))
        }
        Some(b'f') if b[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Value::Bool(false))
        }
        Some(b'n') if b[*pos..].starts_with(b"null") => {
            // Campaign rows use null for non-finite observables.
            *pos += 4;
            Ok(Value::Float(f64::NAN))
        }
        Some(_) => {
            let start = *pos;
            while *pos < b.len()
                && matches!(b[*pos], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
            {
                *pos += 1;
            }
            let s = std::str::from_utf8(&b[start..*pos]).unwrap();
            parse_number(s).map_err(|m| json_err(start, &m))
        }
    }
}

fn json_string(b: &[u8], pos: &mut usize) -> Result<Value, ParseError> {
    if b.get(*pos) != Some(&b'"') {
        return Err(json_err(*pos, "expected string"));
    }
    *pos += 1;
    let start = *pos;
    let mut escaped = false;
    while *pos < b.len() {
        match b[*pos] {
            b'\\' => {
                escaped = true;
                *pos += 2;
            }
            b'"' => {
                let raw = std::str::from_utf8(&b[start..*pos])
                    .map_err(|_| json_err(start, "invalid utf-8"))?;
                *pos += 1;
                let s = if escaped {
                    unescape(raw).map_err(|m| json_err(start, &m))?
                } else {
                    raw.to_string()
                };
                return Ok(Value::Str(s));
            }
            _ => *pos += 1,
        }
    }
    Err(json_err(start, "unterminated string"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn toml_tables_scalars_arrays() {
        let v = parse_toml(
            r#"
            # campaign
            title = "demo"
            [campaign]
            seed = 42            # trailing comment
            gain = 1.5e-3
            flag = true
            [model]
            distances = [-1, 1]
            grid = { start = 0.5, stop = 8.0, steps = 4 }
            "#,
        )
        .unwrap();
        assert_eq!(v.get("title").unwrap().as_str(), Some("demo"));
        assert_eq!(v.get("campaign.seed").unwrap().as_i64(), Some(42));
        assert_eq!(v.get("campaign.gain").unwrap().as_f64(), Some(1.5e-3));
        assert_eq!(v.get("campaign.flag").unwrap().as_bool(), Some(true));
        let d = v.get("model.distances").unwrap().as_array().unwrap();
        assert_eq!(
            d.iter().map(|x| x.as_i64().unwrap()).collect::<Vec<_>>(),
            vec![-1, 1]
        );
        assert_eq!(v.get("model.grid.steps").unwrap().as_i64(), Some(4));
    }

    #[test]
    fn toml_array_of_tables() {
        let v = parse_toml(
            r#"
            [[axes]]
            key = "model.sigma"
            values = [0.5, 1.0]
            [[axes]]
            key = "model.coupling"
            values = [2, 4]
            "#,
        )
        .unwrap();
        let axes = v.get("axes").unwrap().as_array().unwrap();
        assert_eq!(axes.len(), 2);
        assert_eq!(axes[1].get("key").unwrap().as_str(), Some("model.coupling"));
    }

    #[test]
    fn toml_nested_arrays_for_zipped_axes() {
        let v =
            parse_toml(r#"values = [[[-1, 1], "eager"], [[-2, -1, 1], "rendezvous"]]"#).unwrap();
        let vals = v.get("values").unwrap().as_array().unwrap();
        assert_eq!(vals.len(), 2);
        assert_eq!(vals[0].as_array().unwrap()[1].as_str(), Some("eager"));
        assert_eq!(vals[1].as_array().unwrap()[0].as_array().unwrap().len(), 3);
    }

    #[test]
    fn toml_multiline_arrays() {
        let v = parse_toml(
            r#"
            values = [
                [[-1, 1], "eager"],   # first case
                [[-2, -1, 1], "rendezvous"],
            ]
            after = 7
            "#,
        )
        .unwrap();
        let vals = v.get("values").unwrap().as_array().unwrap();
        assert_eq!(vals.len(), 2);
        assert_eq!(vals[1].as_array().unwrap()[1].as_str(), Some("rendezvous"));
        assert_eq!(v.get("after").unwrap().as_i64(), Some(7));
    }

    #[test]
    fn toml_errors_carry_line_numbers() {
        let e = parse_toml("ok = 1\nbroken").unwrap_err();
        assert!(e.at.contains("line 2"), "{e}");
        let e = parse_toml("k = 1\nk = 2").unwrap_err();
        assert!(e.message.contains("duplicate"), "{e}");
    }

    #[test]
    fn json_round_trip() {
        let src = r#"{"campaign":{"name":"j","seed":7},"axes":[{"key":"model.sigma","values":[0.5,1]}],"ok":true,"s":"a\nb"}"#;
        let v = parse_json(src).unwrap();
        assert_eq!(v.get("campaign.seed").unwrap().as_i64(), Some(7));
        assert_eq!(v.get("s").unwrap().as_str(), Some("a\nb"));
        // Canonicalization is stable under re-parsing.
        let c1 = v.canonical();
        let c2 = parse_json(&c1).unwrap().canonical();
        assert_eq!(c1, c2);
    }

    #[test]
    fn auto_detects_format() {
        assert!(parse_auto(r#"{"a": 1}"#).unwrap().get("a").is_some());
        assert!(parse_auto("a = 1").unwrap().get("a").is_some());
    }

    #[test]
    fn canonical_is_sorted_and_deterministic() {
        let mut t = Value::table();
        t.set("b", Value::Int(2)).unwrap();
        t.set("a.x", Value::Float(0.5)).unwrap();
        assert_eq!(t.canonical(), r#"{"a":{"x":0.5},"b":2}"#);
        assert_eq!(
            fnv1a(t.canonical().as_bytes()),
            fnv1a(t.canonical().as_bytes())
        );
    }

    #[test]
    fn set_rejects_non_table_intermediate() {
        let mut t = Value::table();
        t.set("a", Value::Int(1)).unwrap();
        assert!(t.set("a.b", Value::Int(2)).is_err());
    }
}
