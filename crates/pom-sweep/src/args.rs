//! Shared typed `key=value` argument parsing.
//!
//! Both front ends of the toolkit accept the same flat argument surface:
//! the CLI takes `pom simulate n=40 sigma=3` words, the campaign daemon
//! takes `?follow=1&from=3` query strings and `pom serve threads=4`
//! options. Before this module each surface re-implemented the typing
//! (string → f64/usize/bool/list) with its own error strings; now one
//! [`TypedArgs`] table does the lookup and one [`ArgError`] names the
//! offending key, so the CLI and the HTTP API accept and reject
//! *identical* inputs.
//!
//! Numeric typing is delegated to the same number grammar the campaign
//! spec parser uses ([`crate::value`]): `3`, `3.0`, `1.5e-3` and
//! `1_000` all read as numbers everywhere — a value that works in a spec
//! file works on the command line and in a query string.

use std::collections::BTreeMap;
use std::fmt;

use crate::value::{parse_number, Value};

/// Typed-argument errors with the offending key for actionable messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgError {
    /// An argument was not of the form `key=value`.
    Malformed(String),
    /// A key appeared twice.
    Duplicate(String),
    /// A required key is missing.
    Missing(&'static str),
    /// A value failed to parse.
    BadValue {
        /// The key.
        key: String,
        /// The raw value.
        value: String,
        /// What was expected.
        expected: &'static str,
    },
    /// A key is not accepted by the command (registry-driven parsing).
    Unknown {
        /// The key as given.
        key: String,
        /// Pre-rendered list of accepted keys (`a, b, c`), for the message.
        accepted: String,
        /// A close accepted key, when one is within edit distance 2.
        suggestion: Option<String>,
    },
    /// A positional argument beyond what the command declares.
    UnexpectedPositional(String),
}

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgError::Malformed(arg) => write!(f, "`{arg}` is not of the form key=value"),
            ArgError::Duplicate(key) => write!(f, "key `{key}` given twice"),
            ArgError::Missing(key) => write!(f, "missing required key `{key}`"),
            ArgError::BadValue {
                key,
                value,
                expected,
            } => {
                write!(f, "`{key}={value}`: expected {expected}")
            }
            ArgError::Unknown {
                key,
                accepted,
                suggestion,
            } => {
                write!(f, "unknown key `{key}`")?;
                if let Some(s) = suggestion {
                    write!(f, "; did you mean `{s}`?")?;
                }
                if accepted.is_empty() {
                    write!(f, " (no keys accepted)")
                } else {
                    write!(f, " (accepted: {accepted})")
                }
            }
            ArgError::UnexpectedPositional(arg) => {
                write!(f, "unexpected positional argument `{arg}`")
            }
        }
    }
}

impl std::error::Error for ArgError {}

/// A parsed `key=value` table with typed accessors.
#[derive(Debug, Clone, Default)]
pub struct TypedArgs {
    values: BTreeMap<String, String>,
}

impl TypedArgs {
    /// Parse a list of `key=value` strings (CLI argument words).
    pub fn parse<I, S>(args: I) -> Result<Self, ArgError>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut out = Self::default();
        for arg in args {
            let arg = arg.as_ref();
            let Some((k, v)) = arg.split_once('=') else {
                return Err(ArgError::Malformed(arg.to_string()));
            };
            out.insert(k, v)?;
        }
        Ok(out)
    }

    /// Build from pre-split pairs (e.g. an HTTP query string). The same
    /// duplicate-key rule applies as on the command line.
    pub fn from_pairs<I, K, V>(pairs: I) -> Result<Self, ArgError>
    where
        I: IntoIterator<Item = (K, V)>,
        K: AsRef<str>,
        V: AsRef<str>,
    {
        let mut out = Self::default();
        for (k, v) in pairs {
            out.insert(k.as_ref(), v.as_ref())?;
        }
        Ok(out)
    }

    fn insert(&mut self, k: &str, v: &str) -> Result<(), ArgError> {
        if self
            .values
            .insert(k.trim().to_string(), v.trim().to_string())
            .is_some()
        {
            return Err(ArgError::Duplicate(k.trim().to_string()));
        }
        Ok(())
    }

    /// Raw lookup.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    /// All keys (for unknown-key diagnostics).
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.values.keys().map(String::as_str)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no arguments were given.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Raw lookup that errors when absent.
    pub fn require(&self, key: &'static str) -> Result<&str, ArgError> {
        self.get(key).ok_or(ArgError::Missing(key))
    }

    fn number(&self, key: &'static str, expected: &'static str) -> Result<Option<Value>, ArgError> {
        match self.get(key) {
            None => Ok(None),
            Some(v) => parse_number(v).map(Some).map_err(|_| ArgError::BadValue {
                key: key.into(),
                value: v.into(),
                expected,
            }),
        }
    }

    /// `f64` with default.
    pub fn f64_or(&self, key: &'static str, default: f64) -> Result<f64, ArgError> {
        Ok(self
            .number(key, "a number")?
            .and_then(|v| v.as_f64())
            .unwrap_or(default))
    }

    /// `usize` with default.
    pub fn usize_or(&self, key: &'static str, default: usize) -> Result<usize, ArgError> {
        const EXPECTED: &str = "a non-negative integer";
        match self.number(key, EXPECTED)? {
            None => Ok(default),
            Some(v) => v
                .as_i64()
                .and_then(|i| usize::try_from(i).ok())
                .ok_or_else(|| ArgError::BadValue {
                    key: key.into(),
                    value: self.get(key).unwrap_or("").into(),
                    expected: EXPECTED,
                }),
        }
    }

    /// `u64` with default.
    pub fn u64_or(&self, key: &'static str, default: u64) -> Result<u64, ArgError> {
        const EXPECTED: &str = "a non-negative integer";
        match self.number(key, EXPECTED)? {
            None => Ok(default),
            Some(v) => v
                .as_i64()
                .and_then(|i| u64::try_from(i).ok())
                .ok_or_else(|| ArgError::BadValue {
                    key: key.into(),
                    value: self.get(key).unwrap_or("").into(),
                    expected: EXPECTED,
                }),
        }
    }

    /// Boolean with default: `1`/`true`/`yes` are true, `0`/`false`/`no`
    /// are false.
    pub fn bool_or(&self, key: &'static str, default: bool) -> Result<bool, ArgError> {
        match self.get(key) {
            None => Ok(default),
            Some("1") | Some("true") | Some("yes") => Ok(true),
            Some("0") | Some("false") | Some("no") => Ok(false),
            Some(v) => Err(ArgError::BadValue {
                key: key.into(),
                value: v.into(),
                expected: "a boolean (0/1/true/false)",
            }),
        }
    }

    /// String with default.
    pub fn str_or(&self, key: &str, default: &str) -> String {
        self.get(key).unwrap_or(default).to_string()
    }

    /// Comma-separated signed integers (e.g. `distances=-2,-1,1`).
    pub fn i32_list_or(&self, key: &'static str, default: &[i32]) -> Result<Vec<i32>, ArgError> {
        match self.get(key) {
            None => Ok(default.to_vec()),
            Some(v) => v
                .split(',')
                .map(|p| {
                    p.trim().parse().map_err(|_| ArgError::BadValue {
                        key: key.into(),
                        value: v.into(),
                        expected: "comma-separated integers",
                    })
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_key_values() {
        let c = TypedArgs::parse(["n=40", "sigma=3.0", "distances=-1,1"]).unwrap();
        assert_eq!(c.get("n"), Some("40"));
        assert_eq!(c.usize_or("n", 0).unwrap(), 40);
        assert_eq!(c.f64_or("sigma", 0.0).unwrap(), 3.0);
        assert_eq!(c.i32_list_or("distances", &[]).unwrap(), vec![-1, 1]);
    }

    #[test]
    fn defaults_apply() {
        let c = TypedArgs::parse(Vec::<String>::new()).unwrap();
        assert_eq!(c.f64_or("tcomp", 0.9).unwrap(), 0.9);
        assert_eq!(c.usize_or("n", 40).unwrap(), 40);
        assert_eq!(c.str_or("potential", "tanh"), "tanh");
        assert_eq!(c.i32_list_or("distances", &[-1, 1]).unwrap(), vec![-1, 1]);
        assert!(c.bool_or("follow", false).is_ok_and(|b| !b));
    }

    #[test]
    fn whitespace_tolerated() {
        let c = TypedArgs::parse(["n = 7"]).unwrap();
        assert_eq!(c.usize_or("n", 0).unwrap(), 7);
    }

    #[test]
    fn pairs_match_cli_typing() {
        // A query string and the CLI words type identically.
        let q = TypedArgs::from_pairs([("threads", "4"), ("follow", "1")]).unwrap();
        let c = TypedArgs::parse(["threads=4", "follow=1"]).unwrap();
        assert_eq!(
            q.usize_or("threads", 0).unwrap(),
            c.usize_or("threads", 0).unwrap()
        );
        assert_eq!(
            q.bool_or("follow", false).unwrap(),
            c.bool_or("follow", false).unwrap()
        );
    }

    #[test]
    fn spec_number_grammar_is_accepted() {
        // Same grammar as spec files: exponents and underscores.
        let c = TypedArgs::parse(["gain=1.5e-3", "n=1_000"]).unwrap();
        assert_eq!(c.f64_or("gain", 0.0).unwrap(), 1.5e-3);
        assert_eq!(c.usize_or("n", 0).unwrap(), 1000);
    }

    #[test]
    fn errors_are_specific() {
        assert_eq!(
            TypedArgs::parse(["oops"]).unwrap_err(),
            ArgError::Malformed("oops".into())
        );
        assert_eq!(
            TypedArgs::parse(["a=1", "a=2"]).unwrap_err(),
            ArgError::Duplicate("a".into())
        );
        assert_eq!(
            TypedArgs::from_pairs([("a", "1"), ("a", "2")]).unwrap_err(),
            ArgError::Duplicate("a".into())
        );
        let c = TypedArgs::parse(["n=abc"]).unwrap();
        assert!(matches!(c.usize_or("n", 0), Err(ArgError::BadValue { .. })));
        let c = TypedArgs::parse(["n=-3"]).unwrap();
        assert!(matches!(c.usize_or("n", 0), Err(ArgError::BadValue { .. })));
        let c = TypedArgs::parse(["distances=1,x"]).unwrap();
        assert!(c.i32_list_or("distances", &[]).is_err());
        let c = TypedArgs::parse(["follow=2"]).unwrap();
        assert!(c.bool_or("follow", false).is_err());
    }

    #[test]
    fn error_messages_name_the_key() {
        let e = ArgError::BadValue {
            key: "sigma".into(),
            value: "x".into(),
            expected: "a number",
        };
        assert!(e.to_string().contains("sigma"));
        assert!(ArgError::Missing("n").to_string().contains('n'));
        let c = TypedArgs::default();
        assert_eq!(c.require("n").unwrap_err(), ArgError::Missing("n"));
    }
}
