//! Streaming result sinks and the resume scanner.
//!
//! The executor emits [`PointRow`]s strictly in grid order, so every sink
//! here produces byte-identical output for the same spec regardless of
//! thread count. JSONL is the primary format (one self-describing object
//! per line, header first); CSV is provided for spreadsheet-style
//! consumers.

use std::collections::HashSet;
use std::io::{self, Write};

use crate::run::PointRow;
use crate::spec::CampaignSpec;
use crate::value::{format_f64, parse_json, write_json_str, Value};

/// Campaign completion statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CampaignSummary {
    /// Grid size.
    pub total: usize,
    /// Points executed in this invocation.
    pub executed: usize,
    /// Points skipped because a resume cache already had them.
    pub skipped: usize,
    /// Points whose row carries an error.
    pub errors: usize,
    /// True when a [`crate::RunOptions::cancel`] flag stopped the run
    /// before the grid was exhausted.
    pub cancelled: bool,
}

/// Receives campaign output as it streams.
pub trait ResultSink {
    /// Called once before any row.
    fn begin(&mut self, spec: &CampaignSpec) -> io::Result<()>;
    /// Called once per executed point, in ascending `index` order.
    fn row(&mut self, row: &PointRow) -> io::Result<()>;
    /// Called once after the last row.
    fn end(&mut self, summary: &CampaignSummary) -> io::Result<()>;
}

impl PointRow {
    /// The row's JSONL line (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(128);
        out.push_str("{\"point\":");
        out.push_str(&self.index.to_string());
        out.push_str(",\"seed\":");
        out.push_str(&self.seed.to_string());
        out.push_str(",\"params\":{");
        for (i, (k, v)) in self.params.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_json_str(k, &mut out);
            out.push(':');
            out.push_str(&v.canonical());
        }
        out.push('}');
        if let Some(e) = &self.error {
            out.push_str(",\"error\":");
            write_json_str(e, &mut out);
        } else {
            out.push_str(",\"observables\":{");
            for (i, (k, v)) in self.observables.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_json_str(k, &mut out);
                out.push(':');
                out.push_str(&format_f64(*v));
            }
            out.push('}');
        }
        out.push('}');
        out
    }
}

/// The JSONL header line for a campaign (no trailing newline).
pub fn header_json(spec: &CampaignSpec) -> String {
    let mut out = String::new();
    out.push_str("{\"campaign\":");
    write_json_str(&spec.name, &mut out);
    out.push_str(",\"spec_hash\":");
    write_json_str(&format!("{:016x}", spec.spec_hash), &mut out);
    out.push_str(",\"points\":");
    out.push_str(&spec.total_points().to_string());
    out.push_str(",\"seed\":");
    out.push_str(&spec.seed.to_string());
    // Only replicated campaigns carry the field: `replicas = 1` headers
    // stay byte-identical to pre-ensemble output (back-compat pin).
    if spec.replicas > 1 {
        out.push_str(",\"replicas\":");
        out.push_str(&spec.replicas.to_string());
    }
    out.push_str(",\"axes\":[");
    for (i, axis) in spec.axes.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_json_str(&axis.keys.join(","), &mut out);
    }
    out.push_str("],\"observables\":[");
    for (i, col) in spec.observable_columns().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_json_str(col, &mut out);
    }
    out.push_str("]}");
    out
}

/// JSON-lines sink: one header object, then one object per point.
pub struct JsonlSink<W: Write> {
    writer: W,
    /// Suppress the header (used when appending to a resumed file).
    skip_header: bool,
}

impl<W: Write> JsonlSink<W> {
    /// Sink writing a fresh stream (header + rows).
    pub fn new(writer: W) -> Self {
        Self {
            writer,
            skip_header: false,
        }
    }

    /// Sink appending rows to an existing stream (no header).
    pub fn appending(writer: W) -> Self {
        Self {
            writer,
            skip_header: true,
        }
    }

    /// Recover the writer (e.g. the built string/buffer).
    pub fn into_inner(self) -> W {
        self.writer
    }
}

/// Emit one row as a single `write_all` of the full line followed by one
/// `flush`. This is *the* durability contract of the checkpoint format:
/// because each row reaches the writer as exactly one write call, a crash
/// (or an injected torn write) can only ever leave a prefix of the final
/// line — never interleave two rows — which is what lets
/// [`scan_completed_at`] treat any unterminated tail as recoverable.
pub fn write_row_line(w: &mut impl Write, row: &PointRow) -> io::Result<()> {
    let mut line = row.to_json();
    line.push('\n');
    w.write_all(line.as_bytes())?;
    w.flush()
}

impl<W: Write> ResultSink for JsonlSink<W> {
    fn begin(&mut self, spec: &CampaignSpec) -> io::Result<()> {
        if !self.skip_header {
            writeln!(self.writer, "{}", header_json(spec))?;
        }
        Ok(())
    }

    fn row(&mut self, row: &PointRow) -> io::Result<()> {
        write_row_line(&mut self.writer, row)
    }

    fn end(&mut self, _summary: &CampaignSummary) -> io::Result<()> {
        self.writer.flush()
    }
}

/// CSV sink: `point,seed,<axis keys…>,<observables…>,error`.
pub struct CsvSink<W: Write> {
    writer: W,
}

impl<W: Write> CsvSink<W> {
    /// Sink writing header row + data rows.
    pub fn new(writer: W) -> Self {
        Self { writer }
    }

    /// Recover the writer.
    pub fn into_inner(self) -> W {
        self.writer
    }
}

fn csv_cell(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

fn value_cell(v: &Value) -> String {
    match v {
        Value::Str(s) => csv_cell(s),
        other => csv_cell(&other.canonical()),
    }
}

impl<W: Write> ResultSink for CsvSink<W> {
    fn begin(&mut self, spec: &CampaignSpec) -> io::Result<()> {
        let mut cols = vec!["point".to_string(), "seed".to_string()];
        for axis in &spec.axes {
            cols.extend(axis.keys.iter().cloned());
        }
        cols.extend(spec.observable_columns());
        cols.push("error".to_string());
        writeln!(self.writer, "{}", cols.join(","))
    }

    fn row(&mut self, row: &PointRow) -> io::Result<()> {
        let mut cells = vec![row.index.to_string(), row.seed.to_string()];
        cells.extend(row.params.iter().map(|(_, v)| value_cell(v)));
        cells.extend(row.observables.iter().map(|(_, v)| format_f64(*v)));
        cells.push(row.error.as_deref().map(csv_cell).unwrap_or_default());
        writeln!(self.writer, "{}", cells.join(","))?;
        self.writer.flush()
    }

    fn end(&mut self, _summary: &CampaignSummary) -> io::Result<()> {
        self.writer.flush()
    }
}

/// In-memory sink for tests and programmatic consumers.
#[derive(Debug, Default)]
pub struct MemorySink {
    /// Collected rows, in grid order.
    pub rows: Vec<PointRow>,
}

impl ResultSink for MemorySink {
    fn begin(&mut self, _spec: &CampaignSpec) -> io::Result<()> {
        Ok(())
    }

    fn row(&mut self, row: &PointRow) -> io::Result<()> {
        self.rows.push(row.clone());
        Ok(())
    }

    fn end(&mut self, _summary: &CampaignSummary) -> io::Result<()> {
        Ok(())
    }
}

/// Broadcast to several sinks at once (e.g. file + progress meter).
pub struct TeeSink<'a> {
    sinks: Vec<&'a mut dyn ResultSink>,
}

impl<'a> TeeSink<'a> {
    /// Combine sinks; rows go to each in order.
    pub fn new(sinks: Vec<&'a mut dyn ResultSink>) -> Self {
        Self { sinks }
    }
}

impl ResultSink for TeeSink<'_> {
    fn begin(&mut self, spec: &CampaignSpec) -> io::Result<()> {
        self.sinks.iter_mut().try_for_each(|s| s.begin(spec))
    }

    fn row(&mut self, row: &PointRow) -> io::Result<()> {
        self.sinks.iter_mut().try_for_each(|s| s.row(row))
    }

    fn end(&mut self, summary: &CampaignSummary) -> io::Result<()> {
        self.sinks.iter_mut().try_for_each(|s| s.end(summary))
    }
}

/// Detailed outcome of scanning an existing JSONL stream for resume.
#[derive(Debug, Clone, Default)]
pub struct ScanOutcome {
    /// Point indices with a well-formed, error-free row.
    pub done: HashSet<usize>,
    /// Byte length of the well-formed prefix. Shorter than the scanned
    /// text only when the final line is a torn row (or a torn header):
    /// resuming writers must truncate the file to this length before
    /// appending, so the stream stays a whole-line prefix.
    pub retain_len: usize,
    /// The retained prefix is valid JSON-lines content but lacks its
    /// final newline (only the `\n` of the last row was lost to the
    /// tear); appenders must write one before the next row.
    pub needs_newline: bool,
}

/// Scan an existing JSONL stream for completed points, distinguishing a
/// torn *final* row from mid-file corruption.
///
/// Because every row is emitted as one `write_all` + flush
/// ([`write_row_line`]), an interrupted writer can only ever leave a
/// prefix of the **last** line. A malformed line that is *followed by
/// more bytes* therefore cannot be crash truncation — something else
/// damaged the file — and the scan refuses with an error naming the byte
/// offset rather than silently dropping data. A malformed unterminated
/// final line is the torn-write case: it is excluded from `retain_len`
/// (callers truncate it) and its point simply re-runs.
///
/// Fails if the header's `spec_hash` does not match `spec` (the file
/// belongs to a different campaign — resuming would silently mix
/// incompatible results).
pub fn scan_completed_at(text: &str, spec: &CampaignSpec) -> Result<ScanOutcome, String> {
    let total = spec.total_points();
    let want = format!("{:016x}", spec.spec_hash);
    let mut out = ScanOutcome {
        done: HashSet::new(),
        retain_len: text.len(),
        needs_newline: false,
    };
    let mut saw_header = false;
    let mut offset = 0usize;
    for seg in text.split_inclusive('\n') {
        let start = offset;
        offset += seg.len();
        let terminated = seg.ends_with('\n');
        let line = seg.trim();
        if line.is_empty() {
            continue; // blank padding (editors, `echo >>`) is a no-op
        }
        let row = match parse_json(line) {
            Ok(v) => v,
            Err(e) => {
                if terminated {
                    return Err(format!(
                        "corrupt result stream: malformed {} at byte offset {start} ({e}) is \
                         followed by more data, so it cannot be torn-write truncation; \
                         repair or delete the file",
                        if saw_header { "row" } else { "header" },
                    ));
                }
                // Torn final line: everything before it is intact. A torn
                // *header* leaves nothing usable — retain nothing.
                out.retain_len = if saw_header { start } else { 0 };
                out.needs_newline = false;
                return Ok(out);
            }
        };
        if !saw_header {
            let Some(file_hash) = row.get("spec_hash").and_then(Value::as_str) else {
                return Err(format!(
                    "spec hash mismatch: result file carries no `spec_hash` header \
                     (current spec is {want}); delete it or run without resume"
                ));
            };
            if file_hash != want {
                return Err(format!(
                    "spec hash mismatch: result file was written by spec {file_hash}, \
                     current spec is {want}; delete it or run without resume"
                ));
            }
            saw_header = true;
        } else if row.get("error").is_none() {
            // Failed points re-run on resume; good rows count once.
            if let Some(idx) = row.get("point").and_then(Value::as_i64) {
                if idx >= 0 && (idx as usize) < total {
                    out.done.insert(idx as usize);
                }
            }
        }
        if !terminated {
            // A complete row whose newline alone was torn: keep it, the
            // appender restores the `\n`.
            out.needs_newline = true;
        }
    }
    if !saw_header {
        out.retain_len = 0; // only blanks: recreate from scratch
    }
    Ok(out)
}

/// Scan an existing JSONL stream for completed points (see
/// [`scan_completed_at`] for the torn-tail/corruption distinction; this
/// wrapper returns just the completed set).
pub fn scan_completed(text: &str, spec: &CampaignSpec) -> Result<HashSet<usize>, String> {
    Ok(scan_completed_at(text, spec)?.done)
}
