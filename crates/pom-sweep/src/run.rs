//! Executing one grid point and computing its observables.

use pom_analysis::{
    model_wave_speed_in, sim_wave_speed_in, RunSummaryProbe, WaveGeometry, Welford,
};
use pom_core::{NoObserver, PomEnsemble, PomRun, SimSummary, SimWorkspace};
use pom_mpisim::{SimTrace, Simulator};
use pom_topology::{ClusterSpec, Placement, TopologyKind};

use crate::spec::{CampaignSpec, ModelScenario, MpiScenario, Observable, Scenario, SweepError};
use crate::value::Value;

/// One completed grid point, ready for a result sink.
#[derive(Debug, Clone)]
pub struct PointRow {
    /// Grid index (row-major over the axes).
    pub index: usize,
    /// The per-point derived seed.
    pub seed: u64,
    /// Axis assignments, in axis order.
    pub params: Vec<(String, Value)>,
    /// Observables, in the campaign's requested order. Non-finite values
    /// mean "not measurable here" (e.g. no wave detected).
    pub observables: Vec<(String, f64)>,
    /// Set when the scenario failed to resolve or run.
    pub error: Option<String>,
}

/// Resolve, run, and measure grid point `index`. Failures land in
/// [`PointRow::error`] instead of aborting the campaign.
///
/// Allocates fresh scratch per call; the executor's workers hold one
/// [`SimWorkspace`] each and call [`run_point_ws`] instead.
pub fn run_point(spec: &CampaignSpec, index: usize) -> PointRow {
    run_point_ws(spec, index, &mut SimWorkspace::new())
}

/// [`run_point`] with caller-provided scratch memory: every integration
/// this point performs (perturbed run, baseline run) borrows `ws`, so a
/// worker thread sweeping thousands of points reuses one set of stage
/// buffers throughout. Workspace reuse never changes results.
pub fn run_point_ws(spec: &CampaignSpec, index: usize, ws: &mut SimWorkspace) -> PointRow {
    let seed = spec.point_seed(index);
    let params = spec.assignments_at(index);
    match execute(spec, index, seed, ws) {
        Ok(observables) => PointRow {
            index,
            seed,
            params,
            observables,
            error: None,
        },
        Err(e) => PointRow {
            index,
            seed,
            params,
            observables: Vec::new(),
            error: Some(e.to_string()),
        },
    }
}

fn execute(
    spec: &CampaignSpec,
    index: usize,
    seed: u64,
    ws: &mut SimWorkspace,
) -> Result<Vec<(String, f64)>, SweepError> {
    let scenario = spec.scenario_at(index)?;
    match scenario {
        Scenario::Model(m) if spec.replicas > 1 => model_ensemble_observables(&m, spec, index, ws),
        Scenario::Model(m) => model_observables(&m, &spec.observables, seed, ws),
        Scenario::MpiSim(m) => mpisim_observables(&m, &spec.observables, seed),
    }
}

/// Wave-fit geometry of a scenario topology: periodic rings use
/// wraparound rank distance so a front crossing the index boundary is
/// binned at its true (short-way) distance.
fn wave_geometry(kind: &TopologyKind) -> WaveGeometry {
    match kind {
        TopologyKind::Ring { .. } => WaveGeometry::Ring,
        _ => WaveGeometry::Chain,
    }
}

fn model_observables(
    s: &ModelScenario,
    wanted: &[Observable],
    seed: u64,
    ws: &mut SimWorkspace,
) -> Result<Vec<(String, f64)>, SweepError> {
    let needs_baseline = wanted.iter().any(Observable::needs_baseline);
    let opts = s.sim_options();
    let init = s.initial_condition(seed);

    // Wave observables need the recorded perturbed/baseline trajectory
    // pair; everything else streams through the observer fast path with
    // no trajectory allocated (spec parsing rejects mixtures of wave and
    // streaming-only columns). Values are bitwise-stable within a
    // campaign — any thread count, any resume — which is the scope the
    // engine guarantees; *across* specs, adding/removing wave columns
    // switches recorded ↔ streamed execution, whose final states differ
    // in the last ULPs under the adaptive solver (resampled dense
    // interpolant vs raw y_end; see `Pom::simulate_observed`).
    let (summary, probe, wave): (
        SimSummary,
        Option<RunSummaryProbe>,
        Option<pom_analysis::MeasuredWave>,
    ) = if needs_baseline {
        if s.inject.is_none() {
            return Err(SweepError::Spec(
                "wave observables need an [inject] delay to launch the wave".to_string(),
            ));
        }
        let run = |with_inject: bool, ws: &mut SimWorkspace| -> Result<PomRun, SweepError> {
            s.build(seed, with_inject)?
                .simulate_with_ws(init.clone(), &opts, ws)
                .map_err(|e| SweepError::Run(e.to_string()))
        };
        let perturbed = run(true, ws)?;
        let baseline = run(false, ws)?;
        let wave = model_wave_speed_in(
            &perturbed,
            &baseline,
            s.wave.threshold,
            s.wave_source(),
            s.wave_max_distance(),
            wave_geometry(s.topology.kind()),
        );
        let traj = perturbed.trajectory();
        let summary = SimSummary::from_final(
            perturbed.omega(),
            traj.time(traj.len() - 1),
            traj.len().saturating_sub(1),
            traj.last().expect("non-empty run").to_vec(),
        );
        (summary, None, Some(wave))
    } else if wanted.iter().any(Observable::needs_series) {
        let mut probe = RunSummaryProbe::new();
        let summary = s
            .build(seed, true)?
            .simulate_observed_ws(init, &opts, &mut probe, ws)
            .map_err(|e| SweepError::Run(e.to_string()))?;
        (summary, Some(probe), None)
    } else {
        let summary = s
            .build(seed, true)?
            .simulate_observed_ws(init, &opts, &mut NoObserver, ws)
            .map_err(|e| SweepError::Run(e.to_string()))?;
        (summary, None, None)
    };

    wanted
        .iter()
        .map(|o| {
            Ok((
                o.name().to_string(),
                model_scalar(s, *o, &summary, probe.as_ref(), wave.as_ref())?,
            ))
        })
        .collect()
}

/// One model observable's scalar value from a finished run's artifacts.
/// Shared by the single-run path and the per-replica ensemble fold.
fn model_scalar(
    s: &ModelScenario,
    o: Observable,
    summary: &SimSummary,
    probe: Option<&RunSummaryProbe>,
    wave: Option<&pom_analysis::MeasuredWave>,
) -> Result<f64, SweepError> {
    Ok(match o {
        Observable::FinalOrderParameter => summary.final_order_parameter(),
        Observable::FinalPhaseSpread => summary.final_phase_spread(),
        Observable::MeanAbsGap => summary.mean_abs_adjacent_gap(),
        Observable::RelErrTwoThirds => {
            let expect = s.potential.stable_pair_separation();
            if expect > 0.0 {
                (summary.mean_abs_adjacent_gap() - expect).abs() / expect
            } else {
                f64::NAN
            }
        }
        Observable::MeanOrderParameter => probe.map_or(f64::NAN, |p| p.r.stats.mean()),
        Observable::MinOrderParameter => probe.map_or(f64::NAN, |p| p.r.stats.min()),
        Observable::MaxAbsGap => probe.map_or(f64::NAN, |p| p.gaps.max_gap.max()),
        Observable::WaveSpeed => wave.and_then(|w| w.fit.mean_speed()).unwrap_or(f64::NAN),
        Observable::WaveR2 => wave
            .and_then(|w| w.fit.up)
            .map(|f| f.r2)
            .unwrap_or(f64::NAN),
        Observable::Makespan | Observable::TotalWait => {
            return Err(SweepError::Spec(format!(
                "observable `{}` needs the mpisim workload",
                o.name()
            )))
        }
    })
}

/// Run one grid point as an R-replica lockstep ensemble and aggregate each
/// observable across replicas into the four
/// `<obs>_mean`/`<obs>_ci95`/`<obs>_min`/`<obs>_max` columns.
///
/// Replica `rep` uses [`CampaignSpec::replica_seed`]`(index, rep)` for its
/// model build *and* its initial condition — replica 0 is bit-for-bit the
/// run a `replicas = 1` campaign would perform. Batched integration is
/// bitwise identical to R independent runs (see `pom_core::ensemble`), so
/// the aggregates are as deterministic as the plain columns: independent
/// of thread count, resume, and execution order.
fn model_ensemble_observables(
    s: &ModelScenario,
    spec: &CampaignSpec,
    index: usize,
    ws: &mut SimWorkspace,
) -> Result<Vec<(String, f64)>, SweepError> {
    let r = spec.replicas;
    let wanted = &spec.observables;
    let opts = s.sim_options();
    let mut members = Vec::with_capacity(r);
    let mut inits = Vec::with_capacity(r);
    for rep in 0..r {
        let seed = spec.replica_seed(index, rep);
        members.push(s.build(seed, true)?);
        inits.push(s.initial_condition(seed));
    }
    let ensemble = PomEnsemble::new(members);

    let (summaries, probes) = if wanted.iter().any(Observable::needs_series) {
        let mut probes: Vec<RunSummaryProbe> = (0..r).map(|_| RunSummaryProbe::new()).collect();
        let summaries = ensemble
            .simulate_observed_ws(&inits, &opts, &mut probes, ws)
            .map_err(|e| SweepError::Run(e.to_string()))?;
        (summaries, Some(probes))
    } else {
        let mut observers = vec![NoObserver; r];
        let summaries = ensemble
            .simulate_observed_ws(&inits, &opts, &mut observers, ws)
            .map_err(|e| SweepError::Run(e.to_string()))?;
        (summaries, None)
    };

    let mut out = Vec::with_capacity(wanted.len() * 4);
    for o in wanted {
        let mut stats = Welford::new();
        for rep in 0..r {
            stats.push(model_scalar(
                s,
                *o,
                &summaries[rep],
                probes.as_ref().map(|p| &p[rep]),
                None,
            )?);
        }
        let name = o.name();
        out.push((format!("{name}_mean"), stats.mean()));
        out.push((format!("{name}_ci95"), stats.ci95_half_width()));
        out.push((format!("{name}_min"), stats.min()));
        out.push((format!("{name}_max"), stats.max()));
    }
    Ok(out)
}

fn mpisim_observables(
    s: &MpiScenario,
    wanted: &[Observable],
    seed: u64,
) -> Result<Vec<(String, f64)>, SweepError> {
    let needs_baseline = wanted.iter().any(Observable::needs_baseline);

    let run = |with_inject: bool| -> Result<SimTrace, SweepError> {
        let program = s.program(seed, with_inject);
        Simulator::new(program, Placement::packed(ClusterSpec::meggie(), s.n))
            .map_err(|e| SweepError::Run(e.to_string()))?
            .run()
            .map_err(|e| SweepError::Run(e.to_string()))
    };

    let perturbed = run(true)?;
    let wave = if needs_baseline {
        if s.inject.is_none() {
            return Err(SweepError::Spec(
                "wave observables need an [inject] delay to launch the wave".to_string(),
            ));
        }
        let baseline = run(false)?;
        // The simulator's halo exchange wraps (`i + d mod N`): a ring.
        Some(sim_wave_speed_in(
            &perturbed,
            &baseline,
            s.wave.threshold,
            s.wave_source(),
            s.wave_max_distance(),
            WaveGeometry::Ring,
        ))
    } else {
        None
    };

    wanted
        .iter()
        .map(|o| {
            let v = match o {
                Observable::Makespan => perturbed.makespan(),
                Observable::TotalWait => perturbed
                    .ranks()
                    .iter()
                    .map(|r| r.total_wait())
                    .sum::<f64>(),
                Observable::WaveSpeed => wave
                    .as_ref()
                    .and_then(|w| w.fit.mean_speed())
                    .unwrap_or(f64::NAN),
                Observable::WaveR2 => wave
                    .as_ref()
                    .and_then(|w| w.fit.up)
                    .map(|f| f.r2)
                    .unwrap_or(f64::NAN),
                Observable::FinalOrderParameter
                | Observable::FinalPhaseSpread
                | Observable::MeanAbsGap
                | Observable::RelErrTwoThirds
                | Observable::MeanOrderParameter
                | Observable::MinOrderParameter
                | Observable::MaxAbsGap => {
                    return Err(SweepError::Spec(format!(
                        "observable `{}` needs the model workload",
                        o.name()
                    )))
                }
            };
            Ok((o.name().to_string(), v))
        })
        .collect()
}
