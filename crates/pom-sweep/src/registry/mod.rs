//! Declarative command registry: one definition per command drives CLI
//! parsing, help text, and the daemon's request schema.
//!
//! Before this module every front end re-listed its argument surface by
//! hand: `pom-cli` had a 1400-line dispatcher plus a hand-maintained
//! USAGE block, `pom-serve` re-listed accepted query keys per route, and
//! the sweep-spec parser kept its own allowed-key tables. Each new knob
//! had to be threaded through all three, and they could silently drift.
//!
//! Now a command is *data*: an [`ArgSpec`] table (name, [`ArgKind`],
//! default, doc line, positional/required flags) inside a
//! [`CommandSpec`]. One generic driver ([`CommandSpec::parse`]) turns
//! `key=value` words and positionals into a typed [`Parsed`] table,
//! rejecting unknown keys (with a "did you mean" suggestion), duplicate
//! keys, bad types and stray positionals with the same [`ArgError`]
//! wordings [`TypedArgs`](crate::TypedArgs) established. From the same
//! tables the registry generates:
//!
//! * the CLI help (full command table and per-command pages),
//! * the daemon's `GET /schema` document ([`Registry::schema_json`]),
//! * the committed `docs/CLI.md` reference ([`Registry::markdown`]),
//! * sweep-spec section validation ([`SectionSpec::check`]).
//!
//! The toolkit's own definitions live in [`defs`]; [`toolkit`] returns
//! the whole registry.

pub mod defs;

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::args::ArgError;
use crate::value::{parse_number, write_json_str, Value};

/// The type of one argument value; drives parsing, spec-file kind
/// checks, and the rendered schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArgKind {
    /// `0`/`1`/`true`/`false`/`yes`/`no`.
    Bool,
    /// A non-negative integer (spec number grammar: `1_000` works).
    U64,
    /// A float (spec number grammar: `1.5e-3` works).
    F64,
    /// Any string.
    Str,
    /// A filesystem path (string; tagged for docs/schema).
    Path,
    /// Comma-separated signed integers (`distances=-2,-1,1`).
    IntList,
    /// An array of strings (spec files only, e.g. `observables`).
    StrList,
    /// One of a closed set of variants.
    Enum {
        /// Every accepted spelling.
        variants: &'static [&'static str],
        /// Pre-rendered expected-value phrase for error messages
        /// (e.g. `"one of a, b, c, d"`).
        expected: &'static str,
    },
}

impl ArgKind {
    /// Machine-readable kind tag (schema/docs).
    pub fn name(&self) -> &'static str {
        match self {
            ArgKind::Bool => "bool",
            ArgKind::U64 => "u64",
            ArgKind::F64 => "f64",
            ArgKind::Str => "string",
            ArgKind::Path => "path",
            ArgKind::IntList => "int-list",
            ArgKind::StrList => "string-list",
            ArgKind::Enum { .. } => "enum",
        }
    }

    /// The expected-value phrase used in [`ArgError::BadValue`].
    pub fn expected(&self) -> &'static str {
        match self {
            ArgKind::Bool => "a boolean (0/1/true/false)",
            ArgKind::U64 => "a non-negative integer",
            ArgKind::F64 => "a number",
            ArgKind::Str | ArgKind::Path => "a string",
            ArgKind::IntList => "comma-separated integers",
            ArgKind::StrList => "comma-separated names",
            ArgKind::Enum { expected, .. } => expected,
        }
    }

    /// Parse one raw CLI/query value into a typed [`ArgValue`].
    pub fn parse_value(&self, key: &str, raw: &str) -> Result<ArgValue, ArgError> {
        let bad = || ArgError::BadValue {
            key: key.to_string(),
            value: raw.to_string(),
            expected: self.expected(),
        };
        match self {
            ArgKind::Bool => match raw {
                "1" | "true" | "yes" => Ok(ArgValue::Bool(true)),
                "0" | "false" | "no" => Ok(ArgValue::Bool(false)),
                _ => Err(bad()),
            },
            ArgKind::U64 => parse_number(raw)
                .ok()
                .and_then(|v| v.as_i64())
                .and_then(|i| u64::try_from(i).ok())
                .map(ArgValue::U64)
                .ok_or_else(bad),
            ArgKind::F64 => parse_number(raw)
                .ok()
                .and_then(|v| v.as_f64())
                .map(ArgValue::F64)
                .ok_or_else(bad),
            ArgKind::Str | ArgKind::Path => Ok(ArgValue::Str(raw.to_string())),
            ArgKind::IntList => raw
                .split(',')
                .map(|p| p.trim().parse().map_err(|_| bad()))
                .collect::<Result<Vec<i32>, _>>()
                .map(ArgValue::Ints),
            ArgKind::StrList => Ok(ArgValue::Strs(
                raw.split(',').map(|p| p.trim().to_string()).collect(),
            )),
            ArgKind::Enum { variants, .. } => {
                if variants.contains(&raw) {
                    Ok(ArgValue::Str(raw.to_string()))
                } else {
                    Err(bad())
                }
            }
        }
    }

    /// Does a spec-file [`Value`] satisfy this kind? (Enum membership is
    /// left to the scenario resolver, which owns the legacy wordings —
    /// the kind check only demands a string.)
    pub fn admits(&self, v: &Value) -> bool {
        match self {
            ArgKind::Bool => v.as_bool().is_some(),
            ArgKind::U64 => v.as_i64().is_some_and(|i| i >= 0),
            ArgKind::F64 => v.as_f64().is_some(),
            ArgKind::Str | ArgKind::Path | ArgKind::Enum { .. } => v.as_str().is_some(),
            ArgKind::IntList => v
                .as_array()
                .is_some_and(|a| a.iter().all(|e| e.as_i64().is_some())),
            ArgKind::StrList => v
                .as_array()
                .is_some_and(|a| a.iter().all(|e| e.as_str().is_some())),
        }
    }

    /// The `must be …` phrase for spec-file kind mismatches.
    fn spec_phrase(&self) -> &'static str {
        match self {
            ArgKind::Bool => "a bool",
            ArgKind::U64 => "a non-negative integer",
            ArgKind::F64 => "a number",
            ArgKind::Str | ArgKind::Path | ArgKind::Enum { .. } => "a string",
            ArgKind::IntList => "an array of integers",
            ArgKind::StrList => "an array of strings",
        }
    }
}

/// One parsed argument value.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// Boolean flag.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Float.
    F64(f64),
    /// String, path, or enum variant.
    Str(String),
    /// Signed integer list.
    Ints(Vec<i32>),
    /// String list.
    Strs(Vec<String>),
}

/// One declared argument: everything the drivers, help, and schema need.
///
/// Built with the const chain `ArgSpec::new(..).with_default(..)` so the
/// [`defs`] tables stay readable.
#[derive(Debug, Clone, Copy)]
pub struct ArgSpec {
    /// Canonical key.
    pub name: &'static str,
    /// Alternate accepted spellings (e.g. `rhs_threads` for
    /// `rhs-threads`); they parse into the canonical name.
    pub aliases: &'static [&'static str],
    /// Value type.
    pub kind: ArgKind,
    /// Default, rendered exactly as a user would type it; parsed through
    /// [`ArgKind::parse_value`] when the key is absent.
    pub default: Option<&'static str>,
    /// Reject the invocation when absent.
    pub required: bool,
    /// Fillable by a bare word (no `key=`); `key=value` also works.
    pub positional: bool,
    /// One-line description (help, docs, and error explanations).
    pub doc: &'static str,
}

impl ArgSpec {
    /// A plain optional keyword argument.
    pub const fn new(name: &'static str, kind: ArgKind, doc: &'static str) -> Self {
        Self {
            name,
            aliases: &[],
            kind,
            default: None,
            required: false,
            positional: false,
            doc,
        }
    }

    /// Attach a default value (given as the user would type it).
    pub const fn with_default(mut self, default: &'static str) -> Self {
        self.default = Some(default);
        self
    }

    /// Mark required.
    pub const fn required(mut self) -> Self {
        self.required = true;
        self
    }

    /// Mark positional (a bare word can fill it).
    pub const fn positional(mut self) -> Self {
        self.positional = true;
        self
    }

    /// Accept alternate spellings.
    pub const fn with_aliases(mut self, aliases: &'static [&'static str]) -> Self {
        self.aliases = aliases;
        self
    }

    /// Does `key` address this argument (canonical name or alias)?
    pub fn matches(&self, key: &str) -> bool {
        self.name == key || self.aliases.contains(&key)
    }
}

/// One CLI command: name, summary, argument table, examples.
///
/// ```
/// use pom_sweep::registry::{ArgKind, ArgSpec, CommandSpec};
///
/// static ARGS: &[ArgSpec] = &[
///     ArgSpec::new("spec", ArgKind::Path, "campaign spec file")
///         .required()
///         .positional(),
///     ArgSpec::new("threads", ArgKind::U64, "worker threads").with_default("0"),
/// ];
/// static SWEEP: CommandSpec = CommandSpec {
///     name: "sweep",
///     aliases: &[],
///     summary: "run a campaign",
///     args: ARGS,
///     examples: &[],
/// };
///
/// // One driver parses positionals and key=value words into a typed
/// // table; unknown keys, duplicates and type errors are rejected with
/// // the shared `ArgError` wordings.
/// let parsed = SWEEP.parse(["run.toml", "threads=4"]).unwrap();
/// assert_eq!(parsed.str("spec"), "run.toml");
/// assert_eq!(parsed.u64("threads"), 4);
/// assert!(SWEEP.parse(["run.toml", "treads=4"]).is_err()); // did you mean `threads`?
/// ```
#[derive(Debug, Clone, Copy)]
pub struct CommandSpec {
    /// Command word.
    pub name: &'static str,
    /// Alternate command words (e.g. `--help` for `help`).
    pub aliases: &'static [&'static str],
    /// One-line summary for the command table.
    pub summary: &'static str,
    /// Declared arguments.
    pub args: &'static [ArgSpec],
    /// Example invocations (shown in per-command help).
    pub examples: &'static [&'static str],
}

impl CommandSpec {
    /// Parse CLI words (`key=value` or positionals) against this spec.
    pub fn parse<I, S>(&self, words: I) -> Result<Parsed, ArgError>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        parse_words(self.args, words)
    }

    /// Parse pre-split pairs (an HTTP query string) against this spec.
    pub fn parse_pairs<I, K, V>(&self, pairs: I) -> Result<Parsed, ArgError>
    where
        I: IntoIterator<Item = (K, V)>,
        K: AsRef<str>,
        V: AsRef<str>,
    {
        parse_pairs(self.args, pairs)
    }

    /// `usage`-style one-liner: `pom sweep <spec> [key=value ...]`.
    pub fn usage(&self) -> String {
        let mut out = format!("pom {}", self.name);
        for a in self.args.iter().filter(|a| a.positional) {
            let _ = write!(
                out,
                " {}",
                if a.required {
                    format!("<{}>", a.name)
                } else {
                    format!("[{}]", a.name)
                }
            );
        }
        if self.args.iter().any(|a| !a.positional) {
            out.push_str(" [key=value ...]");
        }
        out
    }

    /// The per-command help page (`pom help <cmd>`).
    pub fn help_page(&self) -> String {
        let mut out = format!(
            "pom {} — {}\n\nUSAGE: {}\n",
            self.name,
            self.summary,
            self.usage()
        );
        if !self.args.is_empty() {
            out.push_str("\nARGUMENTS\n");
            let labels: Vec<String> = self.args.iter().map(arg_label).collect();
            let width = labels.iter().map(String::len).max().unwrap_or(0);
            for (a, label) in self.args.iter().zip(&labels) {
                let _ = writeln!(out, "  {label:<width$}  {}{}", a.doc, arg_notes(a));
            }
        }
        if !self.examples.is_empty() {
            out.push_str("\nEXAMPLES\n");
            for e in self.examples {
                let _ = writeln!(out, "  {e}");
            }
        }
        out
    }

    /// Append the offending key's doc line to a parse error, so the
    /// message both names the key and says what the key means. Shared by
    /// the CLI and the HTTP API — both front ends produce the same text.
    pub fn explain(&self, e: &ArgError) -> String {
        explain(self.args, e)
    }
}

/// One HTTP route: method, path pattern, summary, query-arg table.
#[derive(Debug, Clone, Copy)]
pub struct RouteSpec {
    /// HTTP method.
    pub method: &'static str,
    /// Path pattern (`/jobs/{id}/rows`).
    pub path: &'static str,
    /// One-line summary.
    pub summary: &'static str,
    /// Accepted query parameters.
    pub args: &'static [ArgSpec],
}

impl RouteSpec {
    /// Validate a query string against the declared parameters.
    pub fn parse_pairs<I, K, V>(&self, pairs: I) -> Result<Parsed, ArgError>
    where
        I: IntoIterator<Item = (K, V)>,
        K: AsRef<str>,
        V: AsRef<str>,
    {
        parse_pairs(self.args, pairs)
    }

    /// See [`CommandSpec::explain`].
    pub fn explain(&self, e: &ArgError) -> String {
        explain(self.args, e)
    }
}

/// One sweep-spec section (`[model]`, `[sim]`, …) with its key table.
#[derive(Debug, Clone, Copy)]
pub struct SectionSpec {
    /// Section name as written in the spec file.
    pub name: &'static str,
    /// Which workload the section belongs to (`model`, `mpisim`, or
    /// `both`) — docs/schema metadata, and the lookup discriminator for
    /// the two `[inject]` shapes.
    pub workload: &'static str,
    /// Accepted keys.
    pub keys: &'static [ArgSpec],
}

impl SectionSpec {
    /// Validate a parsed section table: unknown keys use the legacy
    /// `unknown key `sec.k` (allowed: …)` wording, kind mismatches the
    /// legacy `` `sec.k` must be … `` wording. Enum membership is left
    /// to the scenario resolver (it owns those wordings).
    pub fn check(&self, t: &BTreeMap<String, Value>) -> Result<(), String> {
        for (k, v) in t {
            let Some(spec) = self.keys.iter().find(|a| a.matches(k)) else {
                let allowed: Vec<&str> = self.keys.iter().map(|a| a.name).collect();
                return Err(format!(
                    "unknown key `{}.{k}` (allowed: {})",
                    self.name,
                    allowed.join(", ")
                ));
            };
            if !spec.kind.admits(v) {
                return Err(format!(
                    "`{}.{k}` must be {}",
                    self.name,
                    spec.kind.spec_phrase()
                ));
            }
        }
        Ok(())
    }
}

/// The whole registry: every command, route, and spec section.
#[derive(Debug, Clone, Copy)]
pub struct Registry {
    /// CLI commands, in help order.
    pub commands: &'static [CommandSpec],
    /// HTTP routes, in docs order.
    pub routes: &'static [RouteSpec],
    /// Sweep-spec sections.
    pub sections: &'static [SectionSpec],
}

impl Registry {
    /// Look up a command by name or alias.
    pub fn command(&self, name: &str) -> Option<&'static CommandSpec> {
        self.commands
            .iter()
            .find(|c| c.name == name || c.aliases.contains(&name))
    }

    /// Look up a route by method and path pattern.
    pub fn route(&self, method: &str, path: &str) -> Option<&'static RouteSpec> {
        self.routes
            .iter()
            .find(|r| r.method == method && r.path == path)
    }

    /// Look up a spec section by name and workload.
    pub fn section(&self, name: &str, workload: &str) -> Option<&'static SectionSpec> {
        self.sections
            .iter()
            .find(|s| s.name == name && (s.workload == workload || s.workload == "both"))
    }

    /// The closest command name within edit distance 2 ("did you mean").
    pub fn suggest_command(&self, input: &str) -> Option<&'static str> {
        closest(input, self.commands.iter().map(|c| c.name))
    }

    /// The full `pom help` table, generated from the command list.
    pub fn help(&self) -> String {
        let mut out = String::from(
            "pom — Physical Oscillator Model toolkit (arXiv:2310.05701 reproduction)\n\
             \n\
             USAGE: pom <command> [key=value ...]\n\
             \n\
             COMMANDS\n",
        );
        let width = self
            .commands
            .iter()
            .map(|c| c.name.len())
            .max()
            .unwrap_or(0);
        for c in self.commands {
            let _ = writeln!(out, "  {:<width$}  {}", c.name, c.summary);
        }
        out.push_str(
            "\nRun `pom help <command>` for one command's arguments, and\n\
             `pom help format=json` for the machine-readable registry\n\
             (the same document the daemon serves at GET /schema).\n",
        );
        out
    }

    /// The registry as deterministic JSON — the `GET /schema` body and
    /// the `pom help format=json` dump (identical by construction).
    pub fn schema_json(&self) -> String {
        let mut out = String::from("{\"commands\":[");
        for (i, c) in self.commands.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            write_json_str(c.name, &mut out);
            out.push_str(",\"aliases\":");
            json_str_list(&mut out, c.aliases);
            out.push_str(",\"summary\":");
            write_json_str(c.summary, &mut out);
            out.push_str(",\"args\":");
            json_args(&mut out, c.args);
            out.push_str(",\"examples\":");
            json_str_list(&mut out, c.examples);
            out.push('}');
        }
        out.push_str("],\"routes\":[");
        for (i, r) in self.routes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"method\":");
            write_json_str(r.method, &mut out);
            out.push_str(",\"path\":");
            write_json_str(r.path, &mut out);
            out.push_str(",\"summary\":");
            write_json_str(r.summary, &mut out);
            out.push_str(",\"args\":");
            json_args(&mut out, r.args);
            out.push('}');
        }
        out.push_str("],\"sections\":[");
        for (i, s) in self.sections.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            write_json_str(s.name, &mut out);
            out.push_str(",\"workload\":");
            write_json_str(s.workload, &mut out);
            out.push_str(",\"keys\":");
            json_args(&mut out, s.keys);
            out.push('}');
        }
        out.push_str("]}");
        out
    }

    /// The committed CLI reference (`docs/CLI.md`), regenerated by
    /// `pom help format=md`; the `help_sync` test fails when stale.
    pub fn markdown(&self) -> String {
        let mut out = String::from(
            "# pom command reference\n\n\
             > Generated from the command registry (`pom_sweep::registry`) by\n\
             > `pom help format=md > docs/CLI.md`. Do not edit by hand — the\n\
             > `help_sync` test fails when this file is stale.\n\n\
             ## CLI commands\n\n",
        );
        for c in self.commands {
            let _ = writeln!(out, "### `{}`\n\n{}\n", c.usage(), c.summary);
            md_args(&mut out, c.args);
            if !c.examples.is_empty() {
                out.push_str("Examples:\n\n");
                for e in c.examples {
                    let _ = writeln!(out, "```\n{e}\n```");
                }
                out.push('\n');
            }
        }
        out.push_str("## HTTP API (`pom serve`)\n\n");
        for r in self.routes {
            let _ = writeln!(out, "### `{} {}`\n\n{}\n", r.method, r.path, r.summary);
            md_args(&mut out, r.args);
        }
        out.push_str("## Sweep-spec sections\n\n");
        for s in self.sections {
            let _ = writeln!(out, "### `[{}]` ({} workload)\n", s.name, s.workload);
            md_args(&mut out, s.keys);
        }
        out
    }
}

/// The toolkit's registry (every `pom` command, daemon route, and spec
/// section).
pub fn toolkit() -> &'static Registry {
    &defs::TOOLKIT
}

/// A parsed, typed argument table: declared defaults applied, every
/// value already through its [`ArgKind`]. Accessors panic on a key the
/// spec does not declare with that kind — that is a programmer error
/// (the structural registry tests pin every table).
#[derive(Debug, Clone)]
pub struct Parsed {
    values: BTreeMap<&'static str, ArgValue>,
    given: Vec<&'static str>,
}

impl Parsed {
    /// Was the key explicitly given (not just defaulted)?
    pub fn is_given(&self, name: &str) -> bool {
        self.given.contains(&name)
    }

    fn value(&self, name: &str) -> Option<&ArgValue> {
        self.values.get(name)
    }

    fn expect(&self, name: &str) -> &ArgValue {
        self.value(name)
            .unwrap_or_else(|| panic!("argument `{name}` has no value and no default in this spec"))
    }

    /// Required/defaulted bool.
    pub fn bool(&self, name: &str) -> bool {
        match self.expect(name) {
            ArgValue::Bool(b) => *b,
            v => panic!("argument `{name}` is not a bool: {v:?}"),
        }
    }

    /// Required/defaulted u64.
    pub fn u64(&self, name: &str) -> u64 {
        match self.expect(name) {
            ArgValue::U64(n) => *n,
            v => panic!("argument `{name}` is not a u64: {v:?}"),
        }
    }

    /// Required/defaulted usize.
    pub fn usize(&self, name: &str) -> usize {
        usize::try_from(self.u64(name)).expect("u64 fits usize")
    }

    /// Required/defaulted f64.
    pub fn f64(&self, name: &str) -> f64 {
        match self.expect(name) {
            ArgValue::F64(x) => *x,
            v => panic!("argument `{name}` is not an f64: {v:?}"),
        }
    }

    /// Required/defaulted string (or enum variant).
    pub fn str(&self, name: &str) -> &str {
        match self.expect(name) {
            ArgValue::Str(s) => s,
            v => panic!("argument `{name}` is not a string: {v:?}"),
        }
    }

    /// Required/defaulted integer list.
    pub fn ints(&self, name: &str) -> &[i32] {
        match self.expect(name) {
            ArgValue::Ints(l) => l,
            v => panic!("argument `{name}` is not an int list: {v:?}"),
        }
    }

    /// Optional u64 (no default declared).
    pub fn opt_u64(&self, name: &str) -> Option<u64> {
        self.value(name).map(|v| match v {
            ArgValue::U64(n) => *n,
            v => panic!("argument `{name}` is not a u64: {v:?}"),
        })
    }

    /// Optional usize (no default declared).
    pub fn opt_usize(&self, name: &str) -> Option<usize> {
        self.opt_u64(name)
            .map(|n| usize::try_from(n).expect("u64 fits usize"))
    }

    /// Optional f64 (no default declared).
    pub fn opt_f64(&self, name: &str) -> Option<f64> {
        self.value(name).map(|v| match v {
            ArgValue::F64(x) => *x,
            v => panic!("argument `{name}` is not an f64: {v:?}"),
        })
    }

    /// Optional string (no default declared).
    pub fn opt_str(&self, name: &str) -> Option<&str> {
        self.value(name).map(|v| match v {
            ArgValue::Str(s) => s.as_str(),
            v => panic!("argument `{name}` is not a string: {v:?}"),
        })
    }
}

/// Generic driver for CLI words: `key=value` in any position, bare
/// words fill declared positionals in order. Surplus bare words are an
/// [`ArgError::UnexpectedPositional`] when the command declares any
/// positional, and the legacy [`ArgError::Malformed`] when it declares
/// none (nothing a bare word could have meant).
pub fn parse_words<I, S>(table: &'static [ArgSpec], words: I) -> Result<Parsed, ArgError>
where
    I: IntoIterator<Item = S>,
    S: AsRef<str>,
{
    let mut positionals = table.iter().filter(|a| a.positional);
    let has_positionals = table.iter().any(|a| a.positional);
    let mut raw: Vec<(&'static ArgSpec, String)> = Vec::new();
    for word in words {
        let word = word.as_ref();
        if let Some((k, v)) = word.split_once('=') {
            let k = k.trim();
            let spec = find_arg(table, k).ok_or_else(|| unknown_key(table, k))?;
            raw.push((spec, v.trim().to_string()));
        } else if let Some(spec) = positionals.next() {
            raw.push((spec, word.trim().to_string()));
        } else if has_positionals {
            return Err(ArgError::UnexpectedPositional(word.to_string()));
        } else {
            return Err(ArgError::Malformed(word.to_string()));
        }
    }
    finish(table, raw)
}

/// Generic driver for pre-split pairs (HTTP query strings).
pub fn parse_pairs<I, K, V>(table: &'static [ArgSpec], pairs: I) -> Result<Parsed, ArgError>
where
    I: IntoIterator<Item = (K, V)>,
    K: AsRef<str>,
    V: AsRef<str>,
{
    let mut raw: Vec<(&'static ArgSpec, String)> = Vec::new();
    for (k, v) in pairs {
        let k = k.as_ref().trim();
        let spec = find_arg(table, k).ok_or_else(|| unknown_key(table, k))?;
        raw.push((spec, v.as_ref().trim().to_string()));
    }
    finish(table, raw)
}

/// Shared tail: duplicate detection, typed conversion, defaults,
/// required keys.
fn finish(
    table: &'static [ArgSpec],
    raw: Vec<(&'static ArgSpec, String)>,
) -> Result<Parsed, ArgError> {
    let mut values = BTreeMap::new();
    let mut given = Vec::new();
    for (spec, v) in raw {
        if values.contains_key(spec.name) {
            return Err(ArgError::Duplicate(spec.name.to_string()));
        }
        values.insert(spec.name, spec.kind.parse_value(spec.name, &v)?);
        given.push(spec.name);
    }
    for spec in table {
        if values.contains_key(spec.name) {
            continue;
        }
        if let Some(default) = spec.default {
            let v = spec
                .kind
                .parse_value(spec.name, default)
                .unwrap_or_else(|e| panic!("default for `{}` does not parse: {e}", spec.name));
            values.insert(spec.name, v);
        } else if spec.required {
            return Err(ArgError::Missing(spec.name));
        }
    }
    Ok(Parsed { values, given })
}

/// Append the offending key's doc line to a parse error. Both front
/// ends (CLI and HTTP) route errors through this, so the differential
/// suite can compare them verbatim.
pub fn explain(table: &'static [ArgSpec], e: &ArgError) -> String {
    let key = match e {
        ArgError::Duplicate(k) => Some(k.as_str()),
        ArgError::Missing(k) => Some(*k),
        ArgError::BadValue { key, .. } => Some(key.as_str()),
        _ => None,
    };
    match key.and_then(|k| find_arg(table, k)) {
        Some(spec) if !spec.doc.is_empty() => format!("{e} — {}: {}", spec.name, spec.doc),
        _ => e.to_string(),
    }
}

fn find_arg(table: &'static [ArgSpec], key: &str) -> Option<&'static ArgSpec> {
    table.iter().find(|a| a.matches(key))
}

fn unknown_key(table: &'static [ArgSpec], key: &str) -> ArgError {
    let accepted: Vec<&str> = table.iter().map(|a| a.name).collect();
    ArgError::Unknown {
        key: key.to_string(),
        suggestion: closest(key, accepted.iter().copied()).map(str::to_string),
        accepted: accepted.join(", "),
    }
}

/// Levenshtein edit distance (iterative two-row DP).
pub fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// The candidate within edit distance 2 of `input`, closest first
/// (ties: first declared). `None` when nothing is close.
pub fn closest<'a>(input: &str, candidates: impl Iterator<Item = &'a str>) -> Option<&'a str> {
    candidates
        .map(|c| (edit_distance(input, c), c))
        .filter(|(d, _)| *d <= 2)
        .min_by_key(|(d, _)| *d)
        .map(|(_, c)| c)
}

fn arg_label(a: &ArgSpec) -> String {
    if a.positional {
        let tag = if a.required { "required" } else { "optional" };
        format!("<{}> ({tag} positional)", a.name)
    } else {
        match a.default {
            Some(d) => format!("{}={d}", a.name),
            None => format!("{}=…", a.name),
        }
    }
}

fn arg_notes(a: &ArgSpec) -> String {
    let mut notes = Vec::new();
    if let ArgKind::Enum { variants, .. } = a.kind {
        notes.push(format!("one of: {}", variants.join(", ")));
    }
    if !a.aliases.is_empty() {
        notes.push(format!("alias: {}", a.aliases.join(", ")));
    }
    if notes.is_empty() {
        String::new()
    } else {
        format!(" [{}]", notes.join("; "))
    }
}

fn json_str_list(out: &mut String, items: &[&str]) {
    out.push('[');
    for (i, s) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_json_str(s, out);
    }
    out.push(']');
}

fn json_args(out: &mut String, args: &[ArgSpec]) {
    out.push('[');
    for (i, a) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":");
        write_json_str(a.name, out);
        out.push_str(",\"kind\":");
        write_json_str(a.kind.name(), out);
        out.push_str(",\"aliases\":");
        json_str_list(out, a.aliases);
        out.push_str(",\"default\":");
        match a.default {
            Some(d) => write_json_str(d, out),
            None => out.push_str("null"),
        }
        let _ = write!(
            out,
            ",\"required\":{},\"positional\":{}",
            a.required, a.positional
        );
        out.push_str(",\"variants\":");
        match a.kind {
            ArgKind::Enum { variants, .. } => json_str_list(out, variants),
            _ => out.push_str("null"),
        }
        out.push_str(",\"doc\":");
        write_json_str(a.doc, out);
        out.push('}');
    }
    out.push(']');
}

fn md_args(out: &mut String, args: &[ArgSpec]) {
    if args.is_empty() {
        out.push_str("No arguments.\n\n");
        return;
    }
    out.push_str("| key | kind | default | description |\n|---|---|---|---|\n");
    for a in args {
        let mut kind = a.kind.name().to_string();
        if let ArgKind::Enum { variants, .. } = a.kind {
            kind = variants.join("\\|");
        }
        let default = match (a.positional, a.required, a.default) {
            (true, true, _) => "*(required positional)*".to_string(),
            (true, false, _) => "*(positional)*".to_string(),
            (_, true, _) => "*(required)*".to_string(),
            (_, _, Some(d)) => format!("`{d}`"),
            (_, _, None) => "—".to_string(),
        };
        let mut doc = a.doc.to_string();
        if !a.aliases.is_empty() {
            let _ = write!(doc, " (alias: `{}`)", a.aliases.join("`, `"));
        }
        let _ = writeln!(out, "| `{}` | {kind} | {default} | {doc} |", a.name);
    }
    out.push('\n');
}

#[cfg(test)]
mod tests {
    use super::*;

    static T: &[ArgSpec] = &[
        ArgSpec::new("spec", ArgKind::Path, "the spec file")
            .required()
            .positional(),
        ArgSpec::new("threads", ArgKind::U64, "worker threads").with_default("0"),
        ArgSpec::new("gain", ArgKind::F64, "gain"),
        ArgSpec::new(
            "mode",
            ArgKind::Enum {
                variants: &["fast", "slow"],
                expected: "one of fast, slow",
            },
            "speed mode",
        )
        .with_default("fast"),
        ArgSpec::new("rhs-threads", ArgKind::U64, "rhs threads")
            .with_default("1")
            .with_aliases(&["rhs_threads"]),
        ArgSpec::new("follow", ArgKind::Bool, "tail the stream").with_default("0"),
        ArgSpec::new("distances", ArgKind::IntList, "offsets").with_default("-1,1"),
    ];

    #[test]
    fn positional_and_keyed_forms_agree() {
        let a = parse_words(T, ["x.toml", "threads=4"]).unwrap();
        let b = parse_words(T, ["spec=x.toml", "threads=4"]).unwrap();
        assert_eq!(a.str("spec"), b.str("spec"));
        assert_eq!(a.u64("threads"), 4);
    }

    #[test]
    fn defaults_apply_and_is_given_tracks() {
        let p = parse_words(T, ["x.toml"]).unwrap();
        assert_eq!(p.u64("threads"), 0);
        assert_eq!(p.str("mode"), "fast");
        assert!(!p.bool("follow"));
        assert_eq!(p.ints("distances"), &[-1, 1]);
        assert!(p.is_given("spec"));
        assert!(!p.is_given("threads"));
        assert_eq!(p.opt_f64("gain"), None);
        let p = parse_words(T, ["x.toml", "gain=1.5e-3"]).unwrap();
        assert_eq!(p.opt_f64("gain"), Some(1.5e-3));
    }

    #[test]
    fn missing_required_positional_is_named() {
        assert_eq!(
            parse_words(T, Vec::<String>::new()).unwrap_err(),
            ArgError::Missing("spec")
        );
    }

    #[test]
    fn surplus_positional_is_rejected() {
        let e = parse_words(T, ["x.toml", "y.toml"]).unwrap_err();
        assert_eq!(e, ArgError::UnexpectedPositional("y.toml".into()));
        // A command with no declared positionals keeps the legacy
        // malformed wording for a bare word.
        static NP: &[ArgSpec] = &[ArgSpec::new("n", ArgKind::U64, "count").with_default("1")];
        let e = parse_words(NP, ["oops"]).unwrap_err();
        assert_eq!(e, ArgError::Malformed("oops".into()));
    }

    #[test]
    fn unknown_key_suggests_nearest() {
        let e = parse_words(T, ["x.toml", "treads=4"]).unwrap_err();
        match &e {
            ArgError::Unknown {
                key, suggestion, ..
            } => {
                assert_eq!(key, "treads");
                assert_eq!(suggestion.as_deref(), Some("threads"));
            }
            other => panic!("{other:?}"),
        }
        let msg = e.to_string();
        assert!(msg.contains("`treads`"), "{msg}");
        assert!(msg.contains("did you mean `threads`?"), "{msg}");
        assert!(msg.contains("accepted: spec, threads"), "{msg}");
    }

    #[test]
    fn aliases_parse_into_canonical_and_duplicate_across_spellings() {
        let p = parse_words(T, ["x.toml", "rhs_threads=3"]).unwrap();
        assert_eq!(p.u64("rhs-threads"), 3);
        assert!(p.is_given("rhs-threads"));
        let e = parse_words(T, ["x.toml", "rhs_threads=3", "rhs-threads=2"]).unwrap_err();
        assert_eq!(e, ArgError::Duplicate("rhs-threads".into()));
    }

    #[test]
    fn typed_errors_keep_the_legacy_wordings() {
        let e = parse_words(T, ["x.toml", "threads=-1"]).unwrap_err();
        assert_eq!(
            e.to_string(),
            "`threads=-1`: expected a non-negative integer"
        );
        let e = parse_words(T, ["x.toml", "follow=2"]).unwrap_err();
        assert_eq!(
            e.to_string(),
            "`follow=2`: expected a boolean (0/1/true/false)"
        );
        let e = parse_words(T, ["x.toml", "mode=medium"]).unwrap_err();
        assert_eq!(e.to_string(), "`mode=medium`: expected one of fast, slow");
        let e = parse_words(T, ["x.toml", "distances=1,x"]).unwrap_err();
        assert_eq!(
            e.to_string(),
            "`distances=1,x`: expected comma-separated integers"
        );
        let e = parse_words(T, ["x.toml", "threads=1", "threads=2"]).unwrap_err();
        assert_eq!(e.to_string(), "key `threads` given twice");
    }

    #[test]
    fn explain_appends_the_doc_line() {
        let e = parse_words(T, ["x.toml", "gain=abc"]).unwrap_err();
        assert_eq!(explain(T, &e), "`gain=abc`: expected a number — gain: gain");
        let e = parse_words(T, Vec::<String>::new()).unwrap_err();
        assert_eq!(
            explain(T, &e),
            "missing required key `spec` — spec: the spec file"
        );
    }

    #[test]
    fn pairs_and_words_reject_identically() {
        let w = parse_words(T, ["x.toml", "follow=2"]).unwrap_err();
        let p = parse_pairs(T, [("spec", "x.toml"), ("follow", "2")]).unwrap_err();
        assert_eq!(w, p);
        let w = parse_words(T, ["x.toml", "fllow=1"]).unwrap_err();
        let p = parse_pairs(T, [("spec", "x.toml"), ("fllow", "1")]).unwrap_err();
        assert_eq!(w, p);
    }

    #[test]
    fn edit_distance_is_levenshtein() {
        assert_eq!(edit_distance("sweep", "sweep"), 0);
        assert_eq!(edit_distance("sweeep", "sweep"), 1);
        assert_eq!(edit_distance("serv", "serve"), 1);
        assert_eq!(edit_distance("kitten", "sitting"), 3);
        assert_eq!(
            closest("sweeep", ["sweep", "serve"].into_iter()),
            Some("sweep")
        );
        assert_eq!(closest("frobnicate", ["sweep", "serve"].into_iter()), None);
    }
}
