//! The toolkit's registry tables: every `pom` command, every validated
//! daemon route, and every sweep-spec section, declared once.
//!
//! Adding a knob is a one-place edit: extend the relevant table here and
//! read the typed value in the command's `run` (or the route handler).
//! Parsing, `pom help`, `pom help <cmd>`, `GET /schema`, `docs/CLI.md`
//! and the differential CLI/HTTP tests all pick it up from this file.

use super::{ArgKind, ArgSpec, CommandSpec, Registry, RouteSpec, SectionSpec};

const fn en(variants: &'static [&'static str], expected: &'static str) -> ArgKind {
    ArgKind::Enum { variants, expected }
}

/// `pom help [command] [format=…]`.
pub const HELP: CommandSpec = CommandSpec {
    name: "help",
    aliases: &["--help", "-h"],
    summary: "this help text (and per-command pages)",
    args: &[
        ArgSpec::new(
            "command",
            ArgKind::Str,
            "command name to describe in detail",
        )
        .positional(),
        ArgSpec::new(
            "format",
            en(&["text", "json", "md"], "one of text, json, md"),
            "output: text, json (the registry, same document as GET /schema), \
             or md (the docs/CLI.md source)",
        )
        .with_default("text"),
    ],
    examples: &["pom help simulate", "pom help format=json"],
};

/// `pom potentials`.
pub const POTENTIALS: CommandSpec = CommandSpec {
    name: "potentials",
    aliases: &[],
    summary: "Fig. 1(a) interaction potential curves",
    args: &[
        ArgSpec::new(
            "sigma",
            ArgKind::F64,
            "interaction horizon σ of the desync potential",
        )
        .with_default("3"),
        ArgSpec::new("xmax", ArgKind::F64, "sample range: x ∈ [-xmax, xmax]").with_default("10"),
        ArgSpec::new("n", ArgKind::U64, "number of samples (min 5)").with_default("41"),
    ],
    examples: &["pom potentials sigma=2 xmax=5 n=11"],
};

/// `pom scaling`.
pub const SCALING: CommandSpec = CommandSpec {
    name: "scaling",
    aliases: &[],
    summary: "Fig. 1(b) per-socket bandwidth scaling",
    args: &[ArgSpec::new(
        "cores",
        ArgKind::U64,
        "processes per socket to sweep (min 1; default = one Meggie socket)",
    )
    .with_default("10")],
    examples: &["pom scaling cores=6"],
};

/// `pom fig2`.
pub const FIG2: CommandSpec = CommandSpec {
    name: "fig2",
    aliases: &[],
    summary: "one Fig. 2 corner case, model + simulator",
    args: &[ArgSpec::new(
        "panel",
        en(&["a", "b", "c", "d"], "one of a, b, c, d"),
        "Fig. 2 corner case to reproduce",
    )
    .with_default("a")],
    examples: &["pom fig2 panel=c"],
};

/// `pom simulate`.
pub const SIMULATE: CommandSpec = CommandSpec {
    name: "simulate",
    aliases: &[],
    summary: "parameterized model run with result views",
    args: &[
        ArgSpec::new("n", ArgKind::U64, "oscillator count (min 2)").with_default("40"),
        ArgSpec::new(
            "potential",
            en(
                &["tanh", "desync", "sin", "kuramoto"],
                "one of tanh, desync, sin, kuramoto",
            ),
            "interaction potential (sin/kuramoto are the plain Kuramoto model)",
        )
        .with_default("tanh"),
        ArgSpec::new(
            "sigma",
            ArgKind::F64,
            "interaction horizon σ (desync potential)",
        )
        .with_default("3"),
        ArgSpec::new("tcomp", ArgKind::F64, "compute-phase duration").with_default("0.9"),
        ArgSpec::new("tcomm", ArgKind::F64, "communication-phase duration").with_default("0.1"),
        ArgSpec::new("distances", ArgKind::IntList, "neighbor distance offsets")
            .with_default("-1,1"),
        ArgSpec::new(
            "topology",
            en(
                &["ring", "chain", "all", "all-to-all"],
                "one of ring, chain, all-to-all",
            ),
            "communication topology",
        )
        .with_default("ring"),
        ArgSpec::new(
            "coupling",
            ArgKind::F64,
            "explicit coupling v_p (overrides κ/β defaults)",
        ),
        ArgSpec::new("kappa", ArgKind::F64, "distance weight κ"),
        ArgSpec::new(
            "norm",
            en(&["degree", "n"], "one of degree, n"),
            "coupling normalization",
        )
        .with_default("degree"),
        ArgSpec::new("t_end", ArgKind::F64, "integration span").with_default("120"),
        ArgSpec::new(
            "samples",
            ArgKind::U64,
            "recorded trajectory samples (trajectory path only)",
        )
        .with_default("400"),
        ArgSpec::new(
            "init",
            en(
                &["sync", "spread", "wavefront"],
                "one of sync, spread, wavefront",
            ),
            "initial condition",
        )
        .with_default("spread"),
        ArgSpec::new(
            "amplitude",
            ArgKind::F64,
            "random-spread amplitude (init=spread)",
        )
        .with_default("1"),
        ArgSpec::new("slope", ArgKind::F64, "wavefront slope (init=wavefront)").with_default("0.5"),
        ArgSpec::new("seed", ArgKind::U64, "base RNG seed").with_default("7"),
        ArgSpec::new("noise", ArgKind::F64, "white-jitter amplitude (0 disables)")
            .with_default("0"),
        ArgSpec::new(
            "delay_rank",
            ArgKind::U64,
            "rank receiving a one-off injected delay",
        ),
        ArgSpec::new(
            "delay_at",
            ArgKind::F64,
            "injected delay window start (with delay_rank)",
        )
        .with_default("5"),
        ArgSpec::new(
            "delay_len",
            ArgKind::F64,
            "injected delay window length (with delay_rank)",
        )
        .with_default("3"),
        ArgSpec::new(
            "kernel",
            en(&["exact", "sincos"], "one of exact, sincos"),
            "RHS kernel: bitwise libm reference or split sin/cos fast path",
        )
        .with_default("exact"),
        ArgSpec::new(
            "rhs-threads",
            ArgKind::U64,
            "intra-run RHS threads (0 = all cores)",
        )
        .with_default("1")
        .with_aliases(&["rhs_threads"]),
        ArgSpec::new(
            "observe",
            ArgKind::Bool,
            "stream observables online (O(N) memory, no trajectory)",
        )
        .with_default("0"),
        ArgSpec::new(
            "record-every",
            ArgKind::U64,
            "streaming decimation stride (observe=1 only)",
        )
        .with_default("1"),
        ArgSpec::new(
            "replicas",
            ArgKind::U64,
            "lockstep ensemble replicas (reports mean/ci95 aggregates)",
        )
        .with_default("1"),
        ArgSpec::new(
            "h",
            ArgKind::F64,
            "fixed RK4 step (opts the ensemble into lockstep batching)",
        ),
        ArgSpec::new(
            "view",
            en(
                &["order", "circle", "spread", "heatmap"],
                "one of order, circle, spread, heatmap",
            ),
            "result view (trajectory path only)",
        )
        .with_default("order"),
    ],
    examples: &[
        "pom simulate n=24 potential=desync sigma=1.5 topology=chain view=circle",
        "pom simulate n=400 observe=1 record-every=10 t_end=500",
        "pom simulate replicas=8 noise=0.05 h=0.05",
    ],
};

/// `pom sweep`.
pub const SWEEP: CommandSpec = CommandSpec {
    name: "sweep",
    aliases: &[],
    summary: "run a declarative scenario campaign from a spec file",
    args: &[
        ArgSpec::new(
            "spec",
            ArgKind::Path,
            "campaign spec file (TOML, or JSON starting with `{`)",
        )
        .required()
        .positional(),
        ArgSpec::new("threads", ArgKind::U64, "worker threads (0 = all cores)").with_default("0"),
        ArgSpec::new(
            "out",
            ArgKind::Path,
            "output file (omit to print the JSONL stream)",
        ),
        ArgSpec::new(
            "format",
            en(&["jsonl", "csv"], "one of jsonl, csv"),
            "output format",
        )
        .with_default("jsonl"),
        ArgSpec::new(
            "resume",
            ArgKind::Bool,
            "resume a partial JSONL file (re-runs only missing points)",
        )
        .with_default("0"),
        ArgSpec::new(
            "stats",
            ArgKind::Bool,
            "instrument the run and append a per-point latency summary (p50/p90/p99)",
        )
        .with_default("0"),
    ],
    examples: &[
        "pom sweep campaign.toml",
        "pom sweep campaign.toml out=rows.jsonl resume=1",
    ],
};

/// `pom serve`.
pub const SERVE: CommandSpec = CommandSpec {
    name: "serve",
    aliases: &[],
    summary: "campaign daemon: HTTP job API over the sweep engine",
    args: &[
        ArgSpec::new("addr", ArgKind::Str, "listen address").with_default("127.0.0.1:7700"),
        ArgSpec::new(
            "spool",
            ArgKind::Path,
            "spool directory (crash-safe job state)",
        )
        .with_default("pom-spool"),
        ArgSpec::new("threads", ArgKind::U64, "worker threads (0 = all cores)").with_default("0"),
        ArgSpec::new(
            "max-jobs",
            ArgKind::U64,
            "active-job admission bound (429 past it)",
        )
        .with_default("16"),
        ArgSpec::new(
            "max-conns",
            ArgKind::U64,
            "concurrent-connection bound (503 past it)",
        )
        .with_default("256"),
        ArgSpec::new(
            "auth",
            ArgKind::Path,
            "tokens.toml enabling per-token submit quotas (401/429)",
        ),
        ArgSpec::new(
            "read-timeout-ms",
            ArgKind::U64,
            "socket read deadline in ms (slowloris 408; 0 disables)",
        )
        .with_default("10000"),
        ArgSpec::new(
            "write-timeout-ms",
            ArgKind::U64,
            "socket write deadline in ms (drops stalled consumers; 0 disables)",
        )
        .with_default("10000"),
        ArgSpec::new(
            "retain",
            ArgKind::U64,
            "spool GC: keep the newest N terminal job dirs (0 = keep all)",
        )
        .with_default("0"),
        ArgSpec::new(
            "retain-age-s",
            ArgKind::U64,
            "spool GC: evict terminal job dirs older than this age in s (0 = off)",
        )
        .with_default("0"),
        ArgSpec::new(
            "log-level",
            en(
                &["debug", "info", "warn", "error", "off"],
                "one of debug, info, warn, error, off",
            ),
            "stderr JSONL event-log level",
        )
        .with_default("warn"),
    ],
    examples: &["pom serve addr=0.0.0.0:7700 max-jobs=4 log-level=info"],
};

/// `pom wave-sweep`.
pub const WAVE_SWEEP: CommandSpec = CommandSpec {
    name: "wave-sweep",
    aliases: &[],
    summary: "idle-wave speed vs. coupling βκ (§5.1.1)",
    args: &[
        ArgSpec::new("n", ArgKind::U64, "oscillator count (min 8)").with_default("40"),
        ArgSpec::new("t_end", ArgKind::F64, "integration span").with_default("80"),
    ],
    examples: &["pom wave-sweep n=24 t_end=60"],
};

/// `pom sigma-sweep`.
pub const SIGMA_SWEEP: CommandSpec = CommandSpec {
    name: "sigma-sweep",
    aliases: &[],
    summary: "phase gap vs. interaction horizon σ (§5.2.2)",
    args: &[
        ArgSpec::new("n", ArgKind::U64, "oscillator count (min 4)").with_default("24"),
        ArgSpec::new("t_end", ArgKind::F64, "integration span").with_default("300"),
    ],
    examples: &["pom sigma-sweep n=12 t_end=200"],
};

/// Query parameters of `POST /jobs`.
pub const ROUTE_SUBMIT: RouteSpec = RouteSpec {
    method: "POST",
    path: "/jobs",
    summary: "submit a campaign spec (TOML/JSON body) → 201 with the job status",
    args: &[
        ArgSpec::new(
            "priority",
            en(&["high", "normal", "low"], "one of high, normal, low"),
            "scheduling band (weighted 4/2/1 dispatch)",
        )
        .with_default("normal"),
        ArgSpec::new(
            "deadline_ms",
            ArgKind::U64,
            "cancel the job this many ms after submit if still unfinished",
        ),
    ],
};

/// Query parameters of `GET /jobs/{id}/rows`.
pub const ROUTE_ROWS: RouteSpec = RouteSpec {
    method: "GET",
    path: "/jobs/{id}/rows",
    summary: "chunked JSONL result stream",
    args: &[ArgSpec::new(
        "follow",
        ArgKind::Bool,
        "tail the stream until the job quiesces",
    )
    .with_default("0")],
};

/// Query parameters of `GET /jobs/{id}/stats` (none).
pub const ROUTE_STATS: RouteSpec = RouteSpec {
    method: "GET",
    path: "/jobs/{id}/stats",
    summary: "per-job point-latency summary (count, p50/p90/p99)",
    args: &[],
};

/// Informational routes (no validated query surface).
pub const ROUTE_HEALTHZ: RouteSpec = RouteSpec {
    method: "GET",
    path: "/healthz",
    summary: "liveness probe",
    args: &[],
};

/// `GET /metrics`.
pub const ROUTE_METRICS: RouteSpec = RouteSpec {
    method: "GET",
    path: "/metrics",
    summary: "Prometheus text exposition of the global registry",
    args: &[],
};

/// `GET /schema`.
pub const ROUTE_SCHEMA: RouteSpec = RouteSpec {
    method: "GET",
    path: "/schema",
    summary: "this registry as JSON (commands, routes, spec sections)",
    args: &[],
};

/// `GET /jobs`.
pub const ROUTE_LIST: RouteSpec = RouteSpec {
    method: "GET",
    path: "/jobs",
    summary: "status of every job",
    args: &[],
};

/// `GET /jobs/{id}`.
pub const ROUTE_STATUS: RouteSpec = RouteSpec {
    method: "GET",
    path: "/jobs/{id}",
    summary: "status of one job",
    args: &[],
};

/// `POST /jobs/{id}/cancel`.
pub const ROUTE_CANCEL: RouteSpec = RouteSpec {
    method: "POST",
    path: "/jobs/{id}/cancel",
    summary: "stop scheduling the job, keep partial results",
    args: &[],
};

/// `POST /jobs/{id}/resume`.
pub const ROUTE_RESUME: RouteSpec = RouteSpec {
    method: "POST",
    path: "/jobs/{id}/resume",
    summary: "re-queue a cancelled job's missing points",
    args: &[],
};

/// `POST /shutdown`.
pub const ROUTE_SHUTDOWN: RouteSpec = RouteSpec {
    method: "POST",
    path: "/shutdown",
    summary: "graceful daemon stop (drain in-flight, flush)",
    args: &[],
};

/// `[campaign]` (both workloads).
pub const SEC_CAMPAIGN: SectionSpec = SectionSpec {
    name: "campaign",
    workload: "both",
    keys: &[
        ArgSpec::new("name", ArgKind::Str, "campaign name (reports and logs)"),
        ArgSpec::new(
            "seed",
            ArgKind::U64,
            "master RNG seed; every point derives from it",
        ),
        ArgSpec::new(
            "workload",
            en(&["model", "mpisim"], "one of model, mpisim"),
            "oscillator model or MPI simulator substrate",
        ),
        ArgSpec::new(
            "observables",
            ArgKind::StrList,
            "observable columns of each result row",
        ),
        ArgSpec::new(
            "replicas",
            ArgKind::U64,
            "lockstep replicas per grid point (model only)",
        ),
    ],
};

/// `[model]`.
pub const SEC_MODEL: SectionSpec = SectionSpec {
    name: "model",
    workload: "model",
    keys: &[
        ArgSpec::new("n", ArgKind::U64, "oscillator count (min 2)"),
        ArgSpec::new(
            "potential",
            en(
                &["tanh", "desync", "sin", "kuramoto"],
                "one of tanh, desync, sin, kuramoto",
            ),
            "interaction potential",
        ),
        ArgSpec::new(
            "sigma",
            ArgKind::F64,
            "interaction horizon σ (desync potential)",
        ),
        ArgSpec::new("tcomp", ArgKind::F64, "compute-phase duration"),
        ArgSpec::new("tcomm", ArgKind::F64, "communication-phase duration"),
        ArgSpec::new("coupling", ArgKind::F64, "explicit coupling v_p"),
        ArgSpec::new("kappa", ArgKind::F64, "distance weight κ"),
        ArgSpec::new(
            "norm",
            en(&["degree", "n"], "one of degree, n"),
            "coupling normalization",
        ),
        ArgSpec::new(
            "kernel",
            en(&["exact", "sincos"], "one of exact, sincos"),
            "RHS kernel selection",
        ),
        ArgSpec::new("rhs_threads", ArgKind::U64, "intra-point RHS threads"),
    ],
};

/// `[topology]`.
pub const SEC_TOPOLOGY: SectionSpec = SectionSpec {
    name: "topology",
    workload: "model",
    keys: &[
        ArgSpec::new(
            "kind",
            en(
                &["ring", "chain", "all", "all-to-all", "grid2d"],
                "one of ring, chain, all-to-all, grid2d",
            ),
            "communication topology",
        ),
        ArgSpec::new("distances", ArgKind::IntList, "neighbor distance offsets"),
        ArgSpec::new("nx", ArgKind::U64, "grid2d width (nx*ny = model.n)"),
        ArgSpec::new("ny", ArgKind::U64, "grid2d height (nx*ny = model.n)"),
        ArgSpec::new("periodic", ArgKind::Bool, "grid2d wraparound"),
    ],
};

/// `[init]`.
pub const SEC_INIT: SectionSpec = SectionSpec {
    name: "init",
    workload: "model",
    keys: &[
        ArgSpec::new(
            "kind",
            en(
                &["sync", "spread", "wavefront"],
                "one of sync, spread, wavefront",
            ),
            "initial condition",
        ),
        ArgSpec::new(
            "amplitude",
            ArgKind::F64,
            "random-spread amplitude (kind=spread)",
        ),
        ArgSpec::new("slope", ArgKind::F64, "wavefront slope (kind=wavefront)"),
        ArgSpec::new("seed", ArgKind::U64, "spread-init seed override"),
    ],
};

/// `[noise]` (both workloads).
pub const SEC_NOISE: SectionSpec = SectionSpec {
    name: "noise",
    workload: "both",
    keys: &[
        ArgSpec::new("sigma", ArgKind::F64, "white-jitter amplitude"),
        ArgSpec::new("seed", ArgKind::U64, "noise seed override"),
    ],
};

/// `[inject]` for the model workload.
pub const SEC_INJECT_MODEL: SectionSpec = SectionSpec {
    name: "inject",
    workload: "model",
    keys: &[
        ArgSpec::new("rank", ArgKind::U64, "rank receiving the one-off delay"),
        ArgSpec::new("at", ArgKind::F64, "delay window start"),
        ArgSpec::new("len", ArgKind::F64, "delay window length"),
        ArgSpec::new("extra", ArgKind::F64, "extra phase lag per window"),
    ],
};

/// `[inject]` for the mpisim workload.
pub const SEC_INJECT_MPISIM: SectionSpec = SectionSpec {
    name: "inject",
    workload: "mpisim",
    keys: &[
        ArgSpec::new("rank", ArgKind::U64, "rank receiving the one-off delay"),
        ArgSpec::new("iteration", ArgKind::U64, "iteration the delay lands on"),
        ArgSpec::new("extra_seconds", ArgKind::F64, "injected extra wall time"),
    ],
};

/// `[sim]`.
pub const SEC_SIM: SectionSpec = SectionSpec {
    name: "sim",
    workload: "model",
    keys: &[
        ArgSpec::new("t_end", ArgKind::F64, "integration span"),
        ArgSpec::new("samples", ArgKind::U64, "recorded trajectory samples"),
        ArgSpec::new(
            "solver",
            en(&["auto", "dopri5", "rk4"], "one of auto, dopri5, rk4"),
            "ODE solver selection",
        ),
        ArgSpec::new("h", ArgKind::F64, "fixed RK4 step (solver=rk4)"),
    ],
};

/// `[wave]` (both workloads).
pub const SEC_WAVE: SectionSpec = SectionSpec {
    name: "wave",
    workload: "both",
    keys: &[
        ArgSpec::new("threshold", ArgKind::F64, "wave-front detection threshold"),
        ArgSpec::new("source", ArgKind::U64, "wave source rank override"),
        ArgSpec::new(
            "max_distance",
            ArgKind::U64,
            "fit range cap (ranks from the source)",
        ),
    ],
};

/// `[mpisim]`.
pub const SEC_MPISIM: SectionSpec = SectionSpec {
    name: "mpisim",
    workload: "mpisim",
    keys: &[
        ArgSpec::new("n", ArgKind::U64, "process count (min 2)"),
        ArgSpec::new("iterations", ArgKind::U64, "bulk-synchronous iterations"),
        ArgSpec::new(
            "kernel",
            en(
                &[
                    "pisolver",
                    "stream",
                    "stream_triad",
                    "schoenauer",
                    "schoenauer_slow",
                ],
                "one of pisolver, stream, schoenauer",
            ),
            "compute kernel between communications",
        ),
        ArgSpec::new(
            "work_seconds",
            ArgKind::F64,
            "nominal compute time per iteration",
        ),
        ArgSpec::new("distances", ArgKind::IntList, "neighbor exchange offsets"),
        ArgSpec::new(
            "protocol",
            en(&["eager", "rendezvous"], "one of eager, rendezvous"),
            "point-to-point protocol",
        ),
        ArgSpec::new("message_bytes", ArgKind::U64, "message size override"),
        ArgSpec::new("allreduce_every", ArgKind::U64, "global allreduce stride"),
    ],
};

/// The whole toolkit, in help/docs order.
pub static TOOLKIT: Registry = Registry {
    commands: &[
        POTENTIALS,
        SCALING,
        FIG2,
        SIMULATE,
        SWEEP,
        SERVE,
        WAVE_SWEEP,
        SIGMA_SWEEP,
        HELP,
    ],
    routes: &[
        ROUTE_HEALTHZ,
        ROUTE_METRICS,
        ROUTE_SCHEMA,
        ROUTE_SUBMIT,
        ROUTE_LIST,
        ROUTE_STATUS,
        ROUTE_ROWS,
        ROUTE_STATS,
        ROUTE_CANCEL,
        ROUTE_RESUME,
        ROUTE_SHUTDOWN,
    ],
    sections: &[
        SEC_CAMPAIGN,
        SEC_MODEL,
        SEC_TOPOLOGY,
        SEC_INIT,
        SEC_NOISE,
        SEC_INJECT_MODEL,
        SEC_INJECT_MPISIM,
        SEC_SIM,
        SEC_WAVE,
        SEC_MPISIM,
    ],
};
