//! The parallel campaign executor.
//!
//! Points are distributed dynamically: workers pull the next pending index
//! from a shared atomic cursor, so long-running points never serialize the
//! rest of the grid behind them (self-balancing — the practical effect of
//! work stealing without per-thread deques, since every "steal" is one
//! `fetch_add`). Completed rows stream back over a channel; the collector
//! holds them in a reorder buffer and releases them to the sink strictly
//! in grid order. Per-point seeds derive from the point *index*, so the
//! resulting byte stream is identical for any thread count.

use std::collections::{BTreeMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use pom_core::SimWorkspace;

use crate::run::{run_point_ws, PointRow};
use crate::sink::{CampaignSummary, ResultSink};
use crate::spec::{CampaignSpec, SweepError};

/// Histogram of per-point wall time — the name `pom sweep stats=1` and
/// `/jobs/{id}/stats` consumers fetch from the global registry.
pub const POINT_DURATION_METRIC: &str = "pom_sweep_point_duration_us";

struct SweepMetrics {
    campaigns: Arc<pom_obs::Counter>,
    points: Arc<pom_obs::Counter>,
    errors: Arc<pom_obs::Counter>,
    skipped: Arc<pom_obs::Counter>,
    queue_depth: Arc<pom_obs::Gauge>,
    point_us: Arc<pom_obs::Histogram>,
}

fn metrics() -> &'static SweepMetrics {
    static M: OnceLock<SweepMetrics> = OnceLock::new();
    M.get_or_init(|| {
        let r = pom_obs::registry();
        SweepMetrics {
            campaigns: r.counter("pom_sweep_campaigns_total", "Campaigns executed."),
            points: r.counter("pom_sweep_points_total", "Sweep points executed."),
            errors: r.counter(
                "pom_sweep_point_errors_total",
                "Sweep points that returned a simulation error.",
            ),
            skipped: r.counter(
                "pom_sweep_points_skipped_total",
                "Points skipped because resume found them already on disk.",
            ),
            queue_depth: r.gauge(
                "pom_sweep_queue_depth",
                "Unclaimed points in the most recently active campaign.",
            ),
            point_us: r.histogram(POINT_DURATION_METRIC, "Per-point wall time."),
        }
    })
}

/// Record one point execution into the global sweep metrics on behalf
/// of an external executor. The campaign daemon schedules points itself
/// (round-robin across jobs, bypassing [`run_campaign`]) but its points
/// are sweep points all the same — without this hook the daemon's
/// `/metrics` would miss the `pom_sweep_*` families entirely. No-op
/// when instrumentation is off.
pub fn record_external_point(elapsed_us: u64, error: bool) {
    if !pom_obs::enabled() {
        return;
    }
    let m = metrics();
    m.points.inc();
    m.point_us.observe(elapsed_us);
    if error {
        m.errors.inc();
    }
}

/// Execution options.
#[derive(Debug, Clone, Default)]
pub struct RunOptions {
    /// Worker threads; `0` uses all available cores.
    pub threads: usize,
    /// Point indices already on disk (resume); they are not re-executed.
    pub completed: HashSet<usize>,
    /// Cooperative cancellation: when the flag flips to `true`, workers
    /// stop claiming new points (in-flight points finish and their rows
    /// still stream if contiguous). The partial output is a valid resume
    /// target — re-running with the same spec completes it bitwise
    /// identically. Used by the campaign daemon and signal handlers.
    pub cancel: Option<Arc<AtomicBool>>,
}

impl RunOptions {
    /// Run on `threads` workers (0 = all cores).
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads,
            completed: HashSet::new(),
            cancel: None,
        }
    }

    /// Attach a cancellation flag (see [`RunOptions::cancel`]).
    pub fn with_cancel(mut self, cancel: Arc<AtomicBool>) -> Self {
        self.cancel = Some(cancel);
        self
    }

    /// The resolved worker count.
    pub fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

/// Expand the grid, execute all pending points across the worker pool,
/// and stream rows to `sink` in index order.
pub fn run_campaign(
    spec: &CampaignSpec,
    opts: &RunOptions,
    sink: &mut dyn ResultSink,
) -> Result<CampaignSummary, SweepError> {
    let total = spec.total_points();
    let pending: Vec<usize> = (0..total).filter(|i| !opts.completed.contains(i)).collect();
    let n_workers = opts.effective_threads().min(pending.len().max(1));

    sink.begin(spec)?;

    let mut summary = CampaignSummary {
        total,
        executed: 0,
        skipped: total - pending.len(),
        errors: 0,
        cancelled: false,
    };

    if pom_obs::enabled() {
        let m = metrics();
        m.campaigns.inc();
        m.skipped.add(summary.skipped as u64);
        m.queue_depth.set(pending.len() as i64);
    }

    if pending.is_empty() {
        sink.end(&summary)?;
        return Ok(summary);
    }

    let cursor = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<PointRow>();

    let mut sink_error: Option<std::io::Error> = None;
    std::thread::scope(|scope| {
        for _ in 0..n_workers {
            let tx = tx.clone();
            let cursor = &cursor;
            let pending = &pending;
            let cancel = opts.cancel.clone();
            scope.spawn(move || {
                // One workspace per worker: every point this thread
                // executes reuses the same integrator scratch buffers.
                let mut ws = SimWorkspace::new();
                loop {
                    // Cooperative cancellation: stop claiming points.
                    if cancel.as_ref().is_some_and(|c| c.load(Ordering::Relaxed)) {
                        break;
                    }
                    let k = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(&index) = pending.get(k) else { break };
                    // Per-point timing only when instrumentation is on —
                    // the disabled path is one relaxed load per point.
                    let row = if pom_obs::enabled() {
                        let m = metrics();
                        m.queue_depth
                            .set(pending.len().saturating_sub(k + 1) as i64);
                        let t0 = Instant::now();
                        let row = run_point_ws(spec, index, &mut ws);
                        m.point_us.observe(t0.elapsed().as_micros() as u64);
                        m.points.inc();
                        if row.error.is_some() {
                            m.errors.inc();
                        }
                        row
                    } else {
                        run_point_ws(spec, index, &mut ws)
                    };
                    // A dropped receiver means the collector bailed; stop.
                    if tx.send(row).is_err() {
                        break;
                    }
                }
            });
        }
        drop(tx);

        // Collector: reorder completions into ascending pending order.
        let mut buffer: BTreeMap<usize, PointRow> = BTreeMap::new();
        let mut emit_at = 0usize; // position within `pending`
        for row in rx {
            buffer.insert(row.index, row);
            while emit_at < pending.len() {
                let next_index = pending[emit_at];
                let Some(row) = buffer.remove(&next_index) else {
                    break;
                };
                summary.executed += 1;
                if row.error.is_some() {
                    summary.errors += 1;
                }
                if let Err(e) = sink.row(&row) {
                    sink_error = Some(e);
                    return; // drops rx; workers stop at next send
                }
                emit_at += 1;
            }
        }
        // Under cancellation, rows past a gap in the reorder buffer are
        // dropped — they re-run on resume, deterministically.
        debug_assert!(
            buffer.is_empty()
                || opts
                    .cancel
                    .as_ref()
                    .is_some_and(|c| c.load(Ordering::Relaxed)),
            "all rows emitted"
        );
    });

    if pom_obs::enabled() {
        metrics().queue_depth.set(0);
    }
    summary.cancelled = opts
        .cancel
        .as_ref()
        .is_some_and(|c| c.load(Ordering::Relaxed));
    if let Some(e) = sink_error {
        return Err(SweepError::Io(e));
    }
    sink.end(&summary)?;
    Ok(summary)
}
