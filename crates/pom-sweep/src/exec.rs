//! The parallel campaign executor.
//!
//! Points are distributed dynamically: workers pull the next pending index
//! from a shared atomic cursor, so long-running points never serialize the
//! rest of the grid behind them (self-balancing — the practical effect of
//! work stealing without per-thread deques, since every "steal" is one
//! `fetch_add`). Completed rows stream back over a channel; the collector
//! holds them in a reorder buffer and releases them to the sink strictly
//! in grid order. Per-point seeds derive from the point *index*, so the
//! resulting byte stream is identical for any thread count.

use std::collections::{BTreeMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::Arc;

use pom_core::SimWorkspace;

use crate::run::{run_point_ws, PointRow};
use crate::sink::{CampaignSummary, ResultSink};
use crate::spec::{CampaignSpec, SweepError};

/// Execution options.
#[derive(Debug, Clone, Default)]
pub struct RunOptions {
    /// Worker threads; `0` uses all available cores.
    pub threads: usize,
    /// Point indices already on disk (resume); they are not re-executed.
    pub completed: HashSet<usize>,
    /// Cooperative cancellation: when the flag flips to `true`, workers
    /// stop claiming new points (in-flight points finish and their rows
    /// still stream if contiguous). The partial output is a valid resume
    /// target — re-running with the same spec completes it bitwise
    /// identically. Used by the campaign daemon and signal handlers.
    pub cancel: Option<Arc<AtomicBool>>,
}

impl RunOptions {
    /// Run on `threads` workers (0 = all cores).
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads,
            completed: HashSet::new(),
            cancel: None,
        }
    }

    /// Attach a cancellation flag (see [`RunOptions::cancel`]).
    pub fn with_cancel(mut self, cancel: Arc<AtomicBool>) -> Self {
        self.cancel = Some(cancel);
        self
    }

    /// The resolved worker count.
    pub fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

/// Expand the grid, execute all pending points across the worker pool,
/// and stream rows to `sink` in index order.
pub fn run_campaign(
    spec: &CampaignSpec,
    opts: &RunOptions,
    sink: &mut dyn ResultSink,
) -> Result<CampaignSummary, SweepError> {
    let total = spec.total_points();
    let pending: Vec<usize> = (0..total).filter(|i| !opts.completed.contains(i)).collect();
    let n_workers = opts.effective_threads().min(pending.len().max(1));

    sink.begin(spec)?;

    let mut summary = CampaignSummary {
        total,
        executed: 0,
        skipped: total - pending.len(),
        errors: 0,
        cancelled: false,
    };

    if pending.is_empty() {
        sink.end(&summary)?;
        return Ok(summary);
    }

    let cursor = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<PointRow>();

    let mut sink_error: Option<std::io::Error> = None;
    std::thread::scope(|scope| {
        for _ in 0..n_workers {
            let tx = tx.clone();
            let cursor = &cursor;
            let pending = &pending;
            let cancel = opts.cancel.clone();
            scope.spawn(move || {
                // One workspace per worker: every point this thread
                // executes reuses the same integrator scratch buffers.
                let mut ws = SimWorkspace::new();
                loop {
                    // Cooperative cancellation: stop claiming points.
                    if cancel.as_ref().is_some_and(|c| c.load(Ordering::Relaxed)) {
                        break;
                    }
                    let k = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(&index) = pending.get(k) else { break };
                    // A dropped receiver means the collector bailed; stop.
                    if tx.send(run_point_ws(spec, index, &mut ws)).is_err() {
                        break;
                    }
                }
            });
        }
        drop(tx);

        // Collector: reorder completions into ascending pending order.
        let mut buffer: BTreeMap<usize, PointRow> = BTreeMap::new();
        let mut emit_at = 0usize; // position within `pending`
        for row in rx {
            buffer.insert(row.index, row);
            while emit_at < pending.len() {
                let next_index = pending[emit_at];
                let Some(row) = buffer.remove(&next_index) else {
                    break;
                };
                summary.executed += 1;
                if row.error.is_some() {
                    summary.errors += 1;
                }
                if let Err(e) = sink.row(&row) {
                    sink_error = Some(e);
                    return; // drops rx; workers stop at next send
                }
                emit_at += 1;
            }
        }
        // Under cancellation, rows past a gap in the reorder buffer are
        // dropped — they re-run on resume, deterministically.
        debug_assert!(
            buffer.is_empty()
                || opts
                    .cancel
                    .as_ref()
                    .is_some_and(|c| c.load(Ordering::Relaxed)),
            "all rows emitted"
        );
    });

    summary.cancelled = opts
        .cancel
        .as_ref()
        .is_some_and(|c| c.load(Ordering::Relaxed));
    if let Some(e) = sink_error {
        return Err(SweepError::Io(e));
    }
    sink.end(&summary)?;
    Ok(summary)
}
