//! # pom-sweep — parallel scenario campaigns for the oscillator model
//!
//! The paper's evidence (Figs. 1–2, §4–5) is built from *sweeps*: over
//! noise amplitude σ, coupling βκ, topology distance sets, delay
//! injections and potential shapes. This crate turns those hand-rolled
//! loops into data:
//!
//! 1. **Declarative specs** ([`CampaignSpec`]): a TOML or JSON document
//!    describing a base scenario (oscillator model or MPI simulator
//!    workload) plus the [`Axis`] list to sweep. Grid, list and zipped
//!    axes expand into a cartesian scenario grid.
//! 2. **Deterministic seeding**: every grid point derives its RNG seed
//!    from the campaign master seed and the point *index*
//!    ([`CampaignSpec::point_seed`]), never from execution order — so a
//!    campaign is bitwise reproducible for any thread count.
//! 3. **Parallel execution** ([`run_campaign`]): a self-balancing worker
//!    pool fans points across cores; a reorder buffer streams finished
//!    rows to the sink strictly in grid order.
//! 4. **Streaming results** ([`JsonlSink`], [`CsvSink`]): rows appear as
//!    they complete, each self-describing (point index, derived seed,
//!    axis assignments, observables).
//! 5. **Resume** ([`scan_completed`]): the JSONL header carries a content
//!    hash of the spec; an interrupted campaign restarts with only the
//!    missing points, and a spec edit is detected instead of silently
//!    mixing incompatible rows.
//!
//! ## Example
//!
//! Sweep the interaction horizon σ of a bottlenecked chain and report the
//! asymptotic adjacent gap (§5.2.2's `2σ/3` law):
//!
//! ```
//! use pom_sweep::{Campaign, MemorySink, RunOptions};
//!
//! let campaign = Campaign::from_str(r#"
//!     [campaign]
//!     name = "two-thirds-law"
//!     seed = 7
//!     observables = ["mean_abs_gap", "rel_err_two_thirds"]
//!
//!     [model]
//!     n = 8
//!     potential = "desync"
//!     coupling = 6.0
//!
//!     [topology]
//!     kind = "chain"
//!
//!     [init]
//!     kind = "spread"
//!     amplitude = 0.1
//!
//!     [sim]
//!     t_end = 150.0
//!     samples = 50
//!
//!     [[axes]]
//!     key = "model.sigma"
//!     values = [1.0, 1.5]
//! "#).unwrap();
//!
//! let mut sink = MemorySink::default();
//! let summary = campaign.run(&RunOptions::with_threads(2), &mut sink).unwrap();
//! assert_eq!(summary.executed, 2);
//!
//! // Each row: the swept σ plus the measured gap ≈ 2σ/3.
//! for row in &sink.rows {
//!     let sigma = row.params[0].1.as_f64().unwrap();
//!     let gap = row.observables[0].1;
//!     assert!((gap - 2.0 * sigma / 3.0).abs() < 0.05, "σ={sigma}: gap {gap}");
//! }
//! ```

pub mod args;
pub mod exec;
pub mod registry;
pub mod run;
pub mod sink;
pub mod spec;
pub mod value;

pub use args::{ArgError, TypedArgs};
pub use exec::{record_external_point, run_campaign, RunOptions, POINT_DURATION_METRIC};
pub use registry::{ArgKind, ArgSpec, CommandSpec, Parsed, Registry, RouteSpec, SectionSpec};
pub use run::{run_point, run_point_ws, PointRow};
pub use sink::{
    header_json, scan_completed, scan_completed_at, write_row_line, CampaignSummary, CsvSink,
    JsonlSink, MemorySink, ResultSink, ScanOutcome, TeeSink,
};
pub use spec::{Axis, CampaignSpec, Observable, Scenario, SweepError};
pub use value::{parse_auto, parse_json, parse_toml, Value};

use std::collections::HashSet;
use std::fs;
use std::io::Write as _;
use std::path::Path;

/// A loaded campaign — the high-level entry point.
#[derive(Debug, Clone)]
pub struct Campaign {
    /// The parsed spec.
    pub spec: CampaignSpec,
}

impl Campaign {
    /// Parse spec text (TOML, or JSON when it starts with `{`).
    #[allow(clippy::should_implement_trait)]
    pub fn from_str(text: &str) -> Result<Self, SweepError> {
        Ok(Self {
            spec: CampaignSpec::parse(text)?,
        })
    }

    /// Load a spec file.
    pub fn from_file(path: impl AsRef<Path>) -> Result<Self, SweepError> {
        let text = fs::read_to_string(path.as_ref())?;
        Self::from_str(&text)
    }

    /// Grid size.
    pub fn total_points(&self) -> usize {
        self.spec.total_points()
    }

    /// Run with explicit options into any sink.
    pub fn run(
        &self,
        opts: &RunOptions,
        sink: &mut dyn ResultSink,
    ) -> Result<CampaignSummary, SweepError> {
        run_campaign(&self.spec, opts, sink)
    }

    /// Run on `threads` workers and collect rows in memory (grid order).
    pub fn run_collect(&self, threads: usize) -> Result<Vec<PointRow>, SweepError> {
        let mut sink = MemorySink::default();
        self.run(&RunOptions::with_threads(threads), &mut sink)?;
        Ok(sink.rows)
    }

    /// Open a JSONL file sink plus the matching run options. With
    /// `resume`, an existing file for the same spec is scanned, its
    /// completed points land in [`RunOptions::completed`], and the sink
    /// appends (starting on a fresh line even after a torn write);
    /// otherwise the file is rewritten from scratch. Callers that wrap
    /// the sink (e.g. in a [`TeeSink`]) must run with the returned
    /// options or resumed points will re-execute.
    pub fn jsonl_file_sink(
        &self,
        path: impl AsRef<Path>,
        threads: usize,
        resume: bool,
    ) -> Result<(JsonlSink<fs::File>, RunOptions), SweepError> {
        let path = path.as_ref();
        let mut opts = RunOptions::with_threads(threads);

        if resume && path.exists() {
            let existing = fs::read_to_string(path)?;
            let outcome = scan_completed_at(&existing, &self.spec).map_err(SweepError::Spec)?;
            if !outcome.done.is_empty() {
                opts.completed = outcome.done;
                let mut file = fs::OpenOptions::new().append(true).open(path)?;
                // An interrupt can tear the final line; truncate the torn
                // fragment so the stream stays a whole-line prefix (the
                // scanner already proved everything before it is intact).
                if outcome.retain_len < existing.len() {
                    file.set_len(outcome.retain_len as u64)?;
                }
                if outcome.needs_newline {
                    file.write_all(b"\n")?;
                }
                return Ok((JsonlSink::appending(file), opts));
            }
        }
        Ok((JsonlSink::new(fs::File::create(path)?), opts))
    }

    /// Run into a JSONL file (see [`Campaign::jsonl_file_sink`] for the
    /// resume semantics).
    pub fn run_jsonl_file(
        &self,
        path: impl AsRef<Path>,
        threads: usize,
        resume: bool,
    ) -> Result<CampaignSummary, SweepError> {
        let (mut sink, opts) = self.jsonl_file_sink(path, threads, resume)?;
        self.run(&opts, &mut sink)
    }

    /// Run into a CSV file (no resume — CSV carries no spec hash).
    pub fn run_csv_file(
        &self,
        path: impl AsRef<Path>,
        threads: usize,
    ) -> Result<CampaignSummary, SweepError> {
        let file = fs::File::create(path.as_ref())?;
        let mut sink = CsvSink::new(file);
        self.run(&RunOptions::with_threads(threads), &mut sink)
    }

    /// Render the whole campaign to a JSONL string (header + rows).
    pub fn run_jsonl_string(&self, threads: usize) -> Result<String, SweepError> {
        let mut sink = JsonlSink::new(Vec::<u8>::new());
        self.run(&RunOptions::with_threads(threads), &mut sink)?;
        let bytes = sink.into_inner();
        Ok(String::from_utf8(bytes).expect("jsonl is utf-8"))
    }

    /// The indices a resume of `path` would still need to execute.
    pub fn missing_points(&self, path: impl AsRef<Path>) -> Result<Vec<usize>, SweepError> {
        let done: HashSet<usize> = if path.as_ref().exists() {
            scan_completed(&fs::read_to_string(path.as_ref())?, &self.spec)
                .map_err(SweepError::Spec)?
        } else {
            HashSet::new()
        };
        Ok((0..self.total_points())
            .filter(|i| !done.contains(i))
            .collect())
    }
}

/// Write a small progress meter to stderr as rows stream (used by the
/// CLI; one line per ~5% of the grid).
pub struct ProgressSink {
    total: usize,
    seen: usize,
    next_report: usize,
}

impl ProgressSink {
    /// Meter for a campaign of known size.
    pub fn new(total: usize) -> Self {
        Self {
            total,
            seen: 0,
            next_report: 1,
        }
    }
}

impl ResultSink for ProgressSink {
    fn begin(&mut self, _spec: &CampaignSpec) -> std::io::Result<()> {
        Ok(())
    }

    fn row(&mut self, _row: &PointRow) -> std::io::Result<()> {
        self.seen += 1;
        if self.seen >= self.next_report {
            eprintln!("pom-sweep: {}/{} points", self.seen, self.total);
            self.next_report = self.seen + (self.total / 20).max(1);
        }
        Ok(())
    }

    fn end(&mut self, _summary: &CampaignSummary) -> std::io::Result<()> {
        std::io::stderr().flush()
    }
}
