//! Integration tests for the campaign engine: grid expansion, cross-thread
//! determinism, streaming order, and resume-after-interrupt.

use std::collections::BTreeSet;
use std::path::PathBuf;

use pom_sweep::{Campaign, CsvSink, ResultSink, RunOptions};

/// Small, fast model campaign: 3 σ × 2 couplings = 6 points.
const SPEC: &str = r#"
    [campaign]
    name = "itest"
    seed = 42
    observables = ["final_r", "final_spread", "mean_abs_gap"]

    [model]
    n = 6
    potential = "desync"
    coupling = 4.0

    [topology]
    kind = "chain"

    [init]
    kind = "spread"
    amplitude = 0.2

    [sim]
    t_end = 20.0
    samples = 40

    [[axes]]
    key = "model.sigma"
    values = [1.0, 2.0, 3.0]

    [[axes]]
    key = "model.coupling"
    values = [3.0, 6.0]
"#;

fn tmp_path(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("pom-sweep-{tag}-{}.jsonl", std::process::id()));
    p
}

#[test]
fn expansion_count_and_row_major_order() {
    let campaign = Campaign::from_str(SPEC).unwrap();
    assert_eq!(campaign.total_points(), 6);
    let rows = campaign.run_collect(2).unwrap();
    assert_eq!(rows.len(), 6);
    // Streaming order is grid order even with 2 threads.
    let indices: Vec<usize> = rows.iter().map(|r| r.index).collect();
    assert_eq!(indices, vec![0, 1, 2, 3, 4, 5]);
    // Row-major: last axis (coupling) fastest.
    let expect = [
        (1.0, 3.0),
        (1.0, 6.0),
        (2.0, 3.0),
        (2.0, 6.0),
        (3.0, 3.0),
        (3.0, 6.0),
    ];
    for (row, (sigma, coupling)) in rows.iter().zip(expect) {
        assert_eq!(row.params[0].0, "model.sigma");
        assert_eq!(row.params[0].1.as_f64(), Some(sigma));
        assert_eq!(row.params[1].1.as_f64(), Some(coupling));
        assert!(row.error.is_none(), "{:?}", row.error);
        assert_eq!(row.observables.len(), 3);
    }
}

#[test]
fn jsonl_identical_across_thread_counts() {
    let campaign = Campaign::from_str(SPEC).unwrap();
    let serial = campaign.run_jsonl_string(1).unwrap();
    let parallel = campaign.run_jsonl_string(4).unwrap();
    let oversubscribed = campaign.run_jsonl_string(16).unwrap();
    assert_eq!(
        serial, parallel,
        "1-thread and 4-thread streams must be bitwise identical"
    );
    assert_eq!(serial, oversubscribed);
    // Sanity: 1 header + 6 rows.
    assert_eq!(serial.lines().count(), 7);
    assert!(serial.lines().next().unwrap().contains("\"spec_hash\""));
}

#[test]
fn per_point_seeds_are_index_stable() {
    let campaign = Campaign::from_str(SPEC).unwrap();
    let a = campaign.run_collect(1).unwrap();
    let b = campaign.run_collect(3).unwrap();
    for (ra, rb) in a.iter().zip(&b) {
        assert_eq!(ra.seed, rb.seed);
        assert_eq!(ra.observables, rb.observables);
    }
    // Distinct points draw distinct seeds.
    let seeds: BTreeSet<u64> = a.iter().map(|r| r.seed).collect();
    assert_eq!(seeds.len(), a.len());
}

#[test]
fn resume_completes_only_missing_points() {
    let campaign = Campaign::from_str(SPEC).unwrap();
    let path = tmp_path("resume");
    let _ = std::fs::remove_file(&path);

    // Fresh full run → reference output.
    campaign.run_jsonl_file(&path, 2, false).unwrap();
    let full = std::fs::read_to_string(&path).unwrap();
    assert_eq!(full.lines().count(), 7);

    // Simulate an interrupt: keep header + first 2 rows + half a row.
    let mut truncated: Vec<&str> = full.lines().take(3).collect();
    truncated.push("{\"point\":2,\"seed\":123,\"par"); // torn write
    std::fs::write(&path, truncated.join("\n")).unwrap();

    let missing = campaign.missing_points(&path).unwrap();
    assert_eq!(missing, vec![2, 3, 4, 5]);

    let summary = campaign.run_jsonl_file(&path, 2, true).unwrap();
    assert_eq!(summary.skipped, 2);
    assert_eq!(summary.executed, 4);

    // Every point present exactly once, values equal to the fresh run.
    let resumed = std::fs::read_to_string(&path).unwrap();
    let mut full_rows: Vec<&str> = full.lines().skip(1).collect();
    let mut resumed_rows: Vec<&str> = resumed
        .lines()
        .skip(1)
        .filter(|l| !l.ends_with("par"))
        .collect();
    full_rows.sort_unstable();
    resumed_rows.sort_unstable();
    assert_eq!(full_rows, resumed_rows);

    assert!(campaign.missing_points(&path).unwrap().is_empty());
    let _ = std::fs::remove_file(&path);
}

#[test]
fn resume_rejects_spec_change() {
    let campaign = Campaign::from_str(SPEC).unwrap();
    let path = tmp_path("hash");
    let _ = std::fs::remove_file(&path);
    campaign.run_jsonl_file(&path, 2, false).unwrap();

    let edited = Campaign::from_str(&SPEC.replace("t_end = 20.0", "t_end = 30.0")).unwrap();
    let err = edited.run_jsonl_file(&path, 2, true).unwrap_err();
    // The error must identify itself and name BOTH hashes so the user can
    // see which spec the file actually belongs to.
    let msg = err.to_string();
    assert!(msg.contains("spec hash mismatch"), "{msg}");
    let campaign_hash = format!("{:016x}", campaign.spec.spec_hash);
    let edited_hash = format!("{:016x}", edited.spec.spec_hash);
    assert!(msg.contains(&campaign_hash), "file hash missing: {msg}");
    assert!(msg.contains(&edited_hash), "current hash missing: {msg}");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn resume_headerless_file_names_current_hash() {
    // A file whose header object lacks `spec_hash` (e.g. hand-edited or
    // foreign JSONL) is a mismatch too, reported as such — not a generic
    // scan failure.
    let campaign = Campaign::from_str(SPEC).unwrap();
    let path = tmp_path("nohash");
    std::fs::write(&path, "{\"campaign\":\"x\"}\n{\"point\":0}\n").unwrap();
    let err = campaign.run_jsonl_file(&path, 2, true).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("spec hash mismatch"), "{msg}");
    assert!(
        msg.contains(&format!("{:016x}", campaign.spec.spec_hash)),
        "{msg}"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn resume_tolerates_trailing_blank_lines() {
    // Editors and `echo >>` commonly leave trailing newlines/blank lines;
    // the scanner must treat them as no-ops, not as torn rows.
    let campaign = Campaign::from_str(SPEC).unwrap();
    let path = tmp_path("blank");
    let _ = std::fs::remove_file(&path);
    campaign.run_jsonl_file(&path, 2, false).unwrap();
    let full = std::fs::read_to_string(&path).unwrap();

    // Keep header + 3 rows, then append blank padding.
    let partial: Vec<&str> = full.lines().take(4).collect();
    std::fs::write(&path, format!("{}\n\n   \n\n", partial.join("\n"))).unwrap();
    assert_eq!(campaign.missing_points(&path).unwrap(), vec![3, 4, 5]);

    let summary = campaign.run_jsonl_file(&path, 2, true).unwrap();
    assert_eq!(summary.skipped, 3);
    assert_eq!(summary.executed, 3);
    // All rows present once, equal to the clean pass.
    let resumed = std::fs::read_to_string(&path).unwrap();
    let mut full_rows: Vec<&str> = full.lines().skip(1).collect();
    let mut resumed_rows: Vec<&str> = resumed
        .lines()
        .skip(1)
        .filter(|l| !l.trim().is_empty())
        .collect();
    full_rows.sort_unstable();
    resumed_rows.sort_unstable();
    assert_eq!(full_rows, resumed_rows);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn cancel_flag_stops_claiming_points_and_resume_completes() {
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    let campaign = Campaign::from_str(SPEC).unwrap();
    let path = tmp_path("cancel");
    let _ = std::fs::remove_file(&path);
    campaign.run_jsonl_file(&path, 2, false).unwrap();
    let full = std::fs::read_to_string(&path).unwrap();
    let _ = std::fs::remove_file(&path);

    // Pre-cancelled run: workers claim nothing, summary says so.
    let cancel = Arc::new(AtomicBool::new(true));
    let (mut sink, opts) = campaign.jsonl_file_sink(&path, 2, false).unwrap();
    let summary = campaign.run(&opts.with_cancel(cancel), &mut sink).unwrap();
    drop(sink);
    assert!(summary.cancelled);
    assert_eq!(summary.executed, 0);

    // The cancelled file (header only) is a valid resume target and the
    // completed output is bitwise identical to the uninterrupted run.
    let summary = campaign.run_jsonl_file(&path, 2, true).unwrap();
    assert_eq!(summary.executed, 6);
    assert_eq!(std::fs::read_to_string(&path).unwrap(), full);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn csv_sink_has_stable_columns() {
    let campaign = Campaign::from_str(SPEC).unwrap();
    let mut sink = CsvSink::new(Vec::<u8>::new());
    campaign
        .run(&RunOptions::with_threads(2), &mut sink)
        .unwrap();
    let text = String::from_utf8(sink.into_inner()).unwrap();
    let mut lines = text.lines();
    assert_eq!(
        lines.next().unwrap(),
        "point,seed,model.sigma,model.coupling,final_r,final_spread,mean_abs_gap,error"
    );
    assert_eq!(lines.count(), 6);
}

#[test]
fn failed_points_are_reported_not_fatal() {
    // inject.rank out of range for n = 4 at one grid point only.
    let spec = r#"
        [campaign]
        observables = ["final_r"]
        [model]
        n = 4
        [sim]
        t_end = 5.0
        samples = 10
        [[axes]]
        key = "model.n"
        values = [4, 2]
        [[axes]]
        key = "model.coupling"
        values = [1.0]
    "#;
    // model.n = 2 with default ring(distances ±1) is fine; use a bad
    // potential instead to trigger a per-point spec failure.
    let campaign = Campaign::from_str(spec).unwrap();
    let rows = campaign.run_collect(2).unwrap();
    assert_eq!(rows.len(), 2);
    assert!(rows.iter().all(|r| r.error.is_none()));

    let bad = Campaign::from_str(
        r#"
        [campaign]
        observables = ["final_r"]
        [model]
        n = 8
        [sim]
        t_end = 5.0
        samples = 10
        [[axes]]
        key = "model.potential"
        values = ["tanh", "quux"]
        "#,
    )
    .unwrap();
    let rows = bad.run_collect(2).unwrap();
    assert_eq!(rows.len(), 2);
    assert!(rows[0].error.is_none());
    let err = rows[1].error.as_deref().unwrap();
    assert!(err.contains("quux"), "{err}");
}

/// Streaming-only observables (`mean_r`, `min_r`, `max_gap`) ride the
/// observer fast path: no trajectory is materialized, values summarize
/// every integrator step.
const STREAMING_SPEC: &str = r#"
    [campaign]
    name = "streamed"
    seed = 11
    observables = ["final_r", "mean_r", "min_r", "max_gap", "final_spread"]

    [model]
    n = 8
    potential = "tanh"
    coupling = 6.0

    [init]
    kind = "spread"
    amplitude = 0.8

    [sim]
    t_end = 40.0

    [[axes]]
    key = "model.coupling"
    values = [3.0, 6.0]

    [[axes]]
    key = "model.n"
    values = [6, 8, 10]
"#;

#[test]
fn streaming_observables_are_consistent() {
    let campaign = Campaign::from_str(STREAMING_SPEC).unwrap();
    let rows = campaign.run_collect(2).unwrap();
    assert_eq!(rows.len(), 6);
    for row in &rows {
        assert!(row.error.is_none(), "{:?}", row.error);
        let get = |name: &str| {
            row.observables
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| *v)
                .unwrap()
        };
        let (final_r, mean_r, min_r, max_gap) =
            (get("final_r"), get("mean_r"), get("min_r"), get("max_gap"));
        // A tanh-coupled run resynchronizes: r climbs towards 1, so the
        // streamed extremes must bracket the streamed mean and the final.
        assert!(final_r > 0.99, "final_r {final_r}");
        assert!(
            min_r <= mean_r && mean_r <= 1.0 + 1e-12,
            "min {min_r} mean {mean_r}"
        );
        assert!(min_r <= final_r, "min {min_r} vs final {final_r}");
        assert!(min_r < 0.999, "a spread start is not yet synchronized");
        // The peak gap can't be below the (tiny) final gap.
        assert!(max_gap > 0.0 && max_gap.is_finite());
    }
}

#[test]
fn streaming_rows_identical_across_thread_counts() {
    let campaign = Campaign::from_str(STREAMING_SPEC).unwrap();
    let serial = campaign.run_jsonl_string(1).unwrap();
    let parallel = campaign.run_jsonl_string(4).unwrap();
    assert_eq!(serial, parallel);
}

/// Streaming observables cannot share a campaign with wave observables
/// (the latter force the recorded trajectory pair, and the streamed
/// values must not depend on which other columns were requested).
#[test]
fn streaming_plus_wave_is_rejected_at_parse() {
    let err = Campaign::from_str(
        r#"
        [campaign]
        observables = ["mean_r", "wave_speed"]
        [model]
        n = 8
        [inject]
        rank = 2
        "#,
    )
    .unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("mean_r") && msg.contains("wave"), "{msg}");
}

/// Satellite regression: a torn JSONL write *of a streamed summary row*
/// must be re-run on resume, and the resumed file must be bitwise
/// identical to a clean single-pass run at any thread count.
#[test]
fn resume_after_torn_summary_row_is_bitwise_clean() {
    let campaign = Campaign::from_str(STREAMING_SPEC).unwrap();
    let path = tmp_path("torn-summary");
    let _ = std::fs::remove_file(&path);

    // Reference: clean single-pass run (single-threaded).
    campaign.run_jsonl_file(&path, 1, false).unwrap();
    let clean = std::fs::read_to_string(&path).unwrap();
    assert_eq!(clean.lines().count(), 7);

    for threads in [1usize, 3, 8] {
        // Interrupt mid-write: header + 3 full rows + a summary row torn
        // in the middle of its observables object.
        let mut torn: Vec<&str> = clean.lines().take(4).collect();
        let row4 = clean.lines().nth(4).unwrap();
        let cut_at = row4.find("\"observables\"").expect("summary row") + 24;
        let cut = &row4[..cut_at.min(row4.len() - 2)];
        torn.push(cut);
        std::fs::write(&path, torn.join("\n")).unwrap();

        // The torn point (index 3) and everything after must re-run.
        assert_eq!(campaign.missing_points(&path).unwrap(), vec![3, 4, 5]);
        let summary = campaign.run_jsonl_file(&path, threads, true).unwrap();
        assert_eq!(summary.skipped, 3);
        assert_eq!(summary.executed, 3);

        // Bitwise identical to the clean pass — modulo row order (resumed
        // rows append after surviving ones) and the torn fragment, which
        // stays in the file but is ignored by every scanner.
        let resumed = std::fs::read_to_string(&path).unwrap();
        let mut clean_lines: Vec<&str> = clean.lines().collect();
        let mut resumed_lines: Vec<&str> = resumed.lines().filter(|l| *l != cut).collect();
        clean_lines.sort_unstable();
        resumed_lines.sort_unstable();
        assert_eq!(
            clean_lines, resumed_lines,
            "threads = {threads}: resumed file must match the clean run bitwise"
        );
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn wave_speed_campaign_measures_moving_front() {
    let campaign = Campaign::from_str(
        r#"
        [campaign]
        name = "wave"
        observables = ["wave_speed", "wave_r2"]

        [model]
        n = 24
        potential = "tanh"
        tcomp = 0.9
        tcomm = 0.1

        [init]
        kind = "sync"

        [inject]
        rank = 5
        at = 2.0
        len = 3.0
        extra = 1.0

        [sim]
        t_end = 60.0
        samples = 300

        [[axes]]
        key = "model.coupling"
        values = [2.0, 8.0]
        "#,
    )
    .unwrap();
    let rows = campaign.run_collect(0).unwrap();
    assert_eq!(rows.len(), 2);
    let speeds: Vec<f64> = rows.iter().map(|r| r.observables[0].1).collect();
    assert!(
        speeds.iter().all(|s| s.is_finite() && *s > 0.0),
        "{speeds:?}"
    );
    assert!(
        speeds[1] > speeds[0],
        "stiffer coupling must speed the wave: {speeds:?}"
    );
}

#[test]
fn mpisim_campaign_reports_makespan() {
    let campaign = Campaign::from_str(
        r#"
        [campaign]
        workload = "mpisim"
        observables = ["makespan", "total_wait"]
        [mpisim]
        n = 8
        iterations = 6
        work_seconds = 1e-4
        [[axes]]
        key = "mpisim.protocol"
        values = ["eager", "rendezvous"]
        "#,
    )
    .unwrap();
    let rows = campaign.run_collect(2).unwrap();
    assert_eq!(rows.len(), 2);
    for row in &rows {
        assert!(row.error.is_none(), "{:?}", row.error);
        assert!(row.observables[0].1 > 0.0);
    }
}

/// The engine streams rows as soon as the in-order prefix completes — a
/// sink observing rows must see them before `end`.
#[test]
fn rows_stream_before_end() {
    struct OrderProbe {
        got_rows_before_end: bool,
        rows: usize,
        ended: bool,
    }
    impl ResultSink for OrderProbe {
        fn begin(&mut self, _: &pom_sweep::CampaignSpec) -> std::io::Result<()> {
            Ok(())
        }
        fn row(&mut self, _: &pom_sweep::PointRow) -> std::io::Result<()> {
            assert!(!self.ended);
            self.rows += 1;
            self.got_rows_before_end = true;
            Ok(())
        }
        fn end(&mut self, s: &pom_sweep::CampaignSummary) -> std::io::Result<()> {
            self.ended = true;
            assert_eq!(s.executed, self.rows);
            Ok(())
        }
    }
    let campaign = Campaign::from_str(SPEC).unwrap();
    let mut probe = OrderProbe {
        got_rows_before_end: false,
        rows: 0,
        ended: false,
    };
    campaign
        .run(&RunOptions::with_threads(3), &mut probe)
        .unwrap();
    assert!(probe.got_rows_before_end && probe.ended && probe.rows == 6);
}

#[test]
fn example_specs_parse_and_resolve() {
    // Every spec shipped under examples/specs/ must stay loadable and
    // resolve its base scenario (this builds the full topology — for the
    // large-N idle-wave spec that includes the 65536-rank ring and its
    // kernel/thread knobs — without running any point).
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../examples/specs");
    let mut seen = 0;
    for entry in std::fs::read_dir(&dir).expect("examples/specs exists") {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("toml") {
            continue;
        }
        seen += 1;
        let campaign =
            Campaign::from_file(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert!(campaign.total_points() >= 1, "{}", path.display());
    }
    assert!(
        seen >= 2,
        "expected the shipped example specs, found {seen}"
    );
}

#[test]
fn large_n_spec_selects_split_parallel_kernel() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../examples/specs");
    let campaign = Campaign::from_file(dir.join("idle_wave_large.toml")).unwrap();
    let pom_sweep::Scenario::Model(s) = campaign.spec.scenario_at(0).unwrap() else {
        panic!("model scenario expected");
    };
    assert_eq!(s.n, 65536);
    assert_eq!(s.kernel, pom_core::RhsKernel::SinCosSplit);
    assert_eq!(s.rhs_threads, 0, "0 = all cores");
    assert!(s.topology.ring_stencil().is_some(), "stencil fast path");
}

#[test]
fn workspace_reuse_matches_fresh_per_point() {
    // The executor hands every worker one long-lived SimWorkspace; a
    // point's results must not depend on what the workspace was used for
    // before (different σ/coupling, hence different trajectories).
    use pom_core::SimWorkspace;
    use pom_sweep::{run_point, run_point_ws};

    let campaign = Campaign::from_str(SPEC).unwrap();
    let mut ws = SimWorkspace::new();
    for index in 0..campaign.total_points() {
        let fresh = run_point(&campaign.spec, index);
        let reused = run_point_ws(&campaign.spec, index, &mut ws);
        assert_eq!(fresh.index, reused.index);
        assert_eq!(fresh.seed, reused.seed);
        assert_eq!(fresh.error, reused.error);
        for ((name_a, a), (name_b, b)) in fresh.observables.iter().zip(&reused.observables) {
            assert_eq!(name_a, name_b);
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "observable {name_a} differs at point {index}"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Ensemble campaigns (campaign.replicas ≥ 2)
// ---------------------------------------------------------------------------

/// R = 3 lockstep ensemble per point: explicit fixed-step solver so the
/// batched path (not the sequential adaptive fallback) is exercised.
const ENSEMBLE_SPEC: &str = r#"
    [campaign]
    name = "ens"
    seed = 7
    replicas = 3
    observables = ["final_r", "final_spread"]

    [model]
    n = 8
    potential = "tanh"
    coupling = 4.0

    [init]
    kind = "spread"
    amplitude = 0.8

    [sim]
    t_end = 10.0
    samples = 20
    solver = "rk4"
    h = 0.05

    [[axes]]
    key = "model.coupling"
    values = [2.0, 6.0]
"#;

#[test]
fn ensemble_emits_aggregate_columns() {
    let campaign = Campaign::from_str(ENSEMBLE_SPEC).unwrap();
    assert_eq!(campaign.spec.replicas, 3);
    let text = campaign.run_jsonl_string(2).unwrap();
    let header = text.lines().next().unwrap();
    assert!(header.contains("\"replicas\":3"), "{header}");
    assert!(
        header.contains("\"final_r_mean\",\"final_r_ci95\",\"final_r_min\",\"final_r_max\""),
        "{header}"
    );

    let rows = campaign.run_collect(2).unwrap();
    assert_eq!(rows.len(), 2);
    for row in &rows {
        assert!(row.error.is_none(), "{:?}", row.error);
        // 2 observables × 4 aggregate columns.
        assert_eq!(row.observables.len(), 8);
        let get = |name: &str| {
            row.observables
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| *v)
                .unwrap()
        };
        for obs in ["final_r", "final_spread"] {
            let (mean, ci95, min, max) = (
                get(&format!("{obs}_mean")),
                get(&format!("{obs}_ci95")),
                get(&format!("{obs}_min")),
                get(&format!("{obs}_max")),
            );
            assert!(min <= mean && mean <= max, "{obs}: {min} {mean} {max}");
            assert!(ci95 >= 0.0 && ci95.is_finite(), "{obs}_ci95 {ci95}");
            // Replicas draw distinct init seeds — the spread of a
            // 3-member ensemble is never exactly degenerate.
            assert!(max > min, "{obs}: replicas collapsed to one value");
        }
    }
}

#[test]
fn ensemble_rows_identical_across_thread_counts() {
    let campaign = Campaign::from_str(ENSEMBLE_SPEC).unwrap();
    let serial = campaign.run_jsonl_string(1).unwrap();
    let parallel = campaign.run_jsonl_string(4).unwrap();
    assert_eq!(serial, parallel);
}

/// Back-compat pin: a `replicas = 1` campaign takes the plain single-run
/// path and its output — header fields and every row — is byte-identical
/// to the same spec without the key (modulo the spec hash, which covers
/// the raw text).
#[test]
fn replicas_one_output_is_byte_identical_to_unreplicated() {
    let with_key =
        Campaign::from_str(&ENSEMBLE_SPEC.replace("replicas = 3", "replicas = 1")).unwrap();
    let without_key = Campaign::from_str(&ENSEMBLE_SPEC.replace("    replicas = 3\n", "")).unwrap();
    assert_eq!(with_key.spec.replicas, 1);
    assert_eq!(without_key.spec.replicas, 1);

    let a = with_key.run_jsonl_string(2).unwrap();
    let b = without_key.run_jsonl_string(2).unwrap();
    // Rows must match byte for byte.
    let rows_a: Vec<&str> = a.lines().skip(1).collect();
    let rows_b: Vec<&str> = b.lines().skip(1).collect();
    assert_eq!(rows_a, rows_b);
    // Headers differ only in the spec hash: neither carries a
    // `replicas` field.
    assert!(!a.lines().next().unwrap().contains("replicas"));
    assert!(!b.lines().next().unwrap().contains("replicas"));
}

/// Replica 0 of an ensemble IS the single run: `replica_seed(i, 0) ==
/// point_seed(i)`, and the batched integration is bitwise identical to
/// independent runs — so the plain column of an unreplicated campaign
/// must appear bitwise among an R = 2 ensemble's min/max.
#[test]
fn replica_zero_matches_single_run_bitwise() {
    let plain = Campaign::from_str(&ENSEMBLE_SPEC.replace("    replicas = 3\n", "")).unwrap();
    let ens = Campaign::from_str(&ENSEMBLE_SPEC.replace("replicas = 3", "replicas = 2")).unwrap();
    assert_eq!(plain.spec.replica_seed(1, 0), plain.spec.point_seed(1));

    let plain_rows = plain.run_collect(1).unwrap();
    let ens_rows = ens.run_collect(1).unwrap();
    for (p, e) in plain_rows.iter().zip(&ens_rows) {
        for (name, v) in &p.observables {
            let get = |suffix: &str| {
                e.observables
                    .iter()
                    .find(|(k, _)| *k == format!("{name}_{suffix}"))
                    .map(|(_, x)| *x)
                    .unwrap()
            };
            let (min, max) = (get("min"), get("max"));
            // With two replicas every value is the min or the max; the
            // single run is replica 0, bit for bit.
            assert!(
                v.to_bits() == min.to_bits() || v.to_bits() == max.to_bits(),
                "{name}: single-run {v} not among ensemble extremes [{min}, {max}]"
            );
        }
    }
}

#[test]
fn ensemble_spec_validation_rejects_degenerate_campaigns() {
    // replicas must be ≥ 1.
    let err = Campaign::from_str("[campaign]\nreplicas = 0\n[model]\nn = 4").unwrap_err();
    assert!(err.to_string().contains("replicas"), "{err}");

    // Wave observables need the recorded perturbed/baseline pair.
    let err = Campaign::from_str(
        "[campaign]\nreplicas = 2\nobservables = [\"wave_speed\"]\n[model]\nn = 8\n[inject]\nrank = 2",
    )
    .unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("wave_speed") && msg.contains("replicas"),
        "{msg}"
    );

    // The mpisim substrate has no ensemble path.
    let err = Campaign::from_str("[campaign]\nreplicas = 2\n[mpisim]\nn = 4\niterations = 2")
        .unwrap_err();
    assert!(err.to_string().contains("mpisim"), "{err}");

    // Nothing varies per replica: sync init, no noise → R identical runs.
    let err =
        Campaign::from_str("[campaign]\nreplicas = 2\n[model]\nn = 4\n[init]\nkind = \"sync\"")
            .unwrap_err();
    assert!(err.to_string().contains("identical replicas"), "{err}");

    // Pinned init seed AND pinned noise seed: also degenerate.
    let err = Campaign::from_str(
        "[campaign]\nreplicas = 2\n[model]\nn = 4\n[init]\nkind = \"spread\"\nseed = 9\n[noise]\nsigma = 0.05\nseed = 3",
    )
    .unwrap_err();
    assert!(err.to_string().contains("identical replicas"), "{err}");

    // Unpinned noise alone is enough to diversify replicas.
    let ok = Campaign::from_str(
        "[campaign]\nreplicas = 2\n[model]\nn = 4\n[init]\nkind = \"sync\"\n[noise]\nsigma = 0.05",
    );
    assert!(ok.is_ok(), "{:?}", ok.err().map(|e| e.to_string()));
}

#[test]
fn solver_keys_validate_at_parse() {
    // rk4 needs an explicit step.
    let err = Campaign::from_str("[model]\nn = 4\n[sim]\nsolver = \"rk4\"").unwrap_err();
    assert!(err.to_string().contains("sim.h"), "{err}");
    // sim.h without rk4 is a mistake, not silently ignored.
    let err = Campaign::from_str("[model]\nn = 4\n[sim]\nh = 0.05").unwrap_err();
    assert!(err.to_string().contains("sim.h"), "{err}");
    let err =
        Campaign::from_str("[model]\nn = 4\n[sim]\nsolver = \"dopri5\"\nh = 0.05").unwrap_err();
    assert!(err.to_string().contains("sim.h"), "{err}");
    // Unknown solver names fail loudly.
    let err = Campaign::from_str("[model]\nn = 4\n[sim]\nsolver = \"euler\"").unwrap_err();
    assert!(err.to_string().contains("euler"), "{err}");
    // Valid forms parse.
    assert!(Campaign::from_str("[model]\nn = 4\n[sim]\nsolver = \"auto\"").is_ok());
    assert!(Campaign::from_str("[model]\nn = 4\n[sim]\nsolver = \"rk4\"\nh = 0.05").is_ok());
}
