//! A minimal, self-contained subset of the `proptest` API.
//!
//! The build environment has no access to a crate registry, so the real
//! `proptest` cannot be fetched. This vendored stand-in implements exactly
//! the surface the workspace's property tests use — deterministic random
//! sampling, strategy combinators, and the `proptest!`/`prop_assert!`
//! macro family — with per-test seeding derived from the test's module
//! path, so failures are reproducible run to run.
//!
//! Unsupported features of the real crate (shrinking, failure persistence,
//! regex strategies, …) are intentionally absent.

pub mod test_runner {
    /// Deterministic splitmix64 generator used for all sampling.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed deterministically from an arbitrary label (test path).
        pub fn deterministic(label: &str) -> Self {
            // FNV-1a over the label, then a splitmix scramble.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in label.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            Self { state: h }
        }

        /// Next raw 64-bit value (splitmix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// Uniform in `[0, n)`.
        pub fn below(&mut self, n: u64) -> u64 {
            if n == 0 {
                0
            } else {
                self.next_u64() % n
            }
        }
    }

    /// Per-block configuration (`#![proptest_config(...)]`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Run each property `cases` times.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // The real crate defaults to 256; the numerical properties in
            // this workspace integrate ODEs per case, so keep runtime sane.
            Self { cases: 32 }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A generator of random values (sampling only — no shrinking).
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Keep only values for which `f` returns true (resamples; gives
        /// up after a bounded number of rejections).
        fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                reason,
                f,
            }
        }
    }

    /// Always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// See [`Strategy::prop_filter`].
    #[derive(Debug, Clone)]
    pub struct Filter<S, F> {
        inner: S,
        reason: &'static str,
        f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.sample(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter({:?}) rejected 1000 consecutive samples",
                self.reason
            );
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            self.start() + rng.next_f64() * (self.end() - self.start())
        }
    }

    macro_rules! int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let span = (self.end as i128) - (self.start as i128);
                    assert!(span > 0, "empty integer range");
                    (self.start as i128 + rng.below(span as u64) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let span = (*self.end() as i128) - (*self.start() as i128) + 1;
                    assert!(span > 0, "empty integer range");
                    (*self.start() as i128 + rng.below(span as u64) as i128) as $t
                }
            }
        )*};
    }
    int_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    macro_rules! tuple_strategy {
        ($(($($n:tt $s:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$n.sample(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (0 A)
        (0 A, 1 B)
        (0 A, 1 B, 2 C)
        (0 A, 1 B, 2 C, 3 D)
    }

    /// Uniform choice between boxed alternative strategies (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// An empty union; populate with [`Union::or`].
        #[allow(clippy::new_without_default)]
        pub fn new() -> Self {
            Self { arms: Vec::new() }
        }

        /// Add one alternative.
        pub fn or(mut self, s: impl Strategy<Value = T> + 'static) -> Self {
            self.arms.push(Box::new(s));
            self
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            assert!(!self.arms.is_empty(), "prop_oneof! with no arms");
            let k = rng.below(self.arms.len() as u64) as usize;
            self.arms[k].sample(rng)
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical full-domain strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        /// The strategy type returned by [`any`].
        type Strategy: Strategy<Value = Self>;
        /// The canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    /// Full-domain strategy for primitives.
    #[derive(Debug, Clone, Copy)]
    pub struct AnyPrimitive<T>(std::marker::PhantomData<T>);

    macro_rules! any_int {
        ($($t:ty),*) => {$(
            impl Strategy for AnyPrimitive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
            impl Arbitrary for $t {
                type Strategy = AnyPrimitive<$t>;
                fn arbitrary() -> Self::Strategy {
                    AnyPrimitive(std::marker::PhantomData)
                }
            }
        )*};
    }
    any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for AnyPrimitive<bool> {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for bool {
        type Strategy = AnyPrimitive<bool>;
        fn arbitrary() -> Self::Strategy {
            AnyPrimitive(std::marker::PhantomData)
        }
    }

    /// The canonical strategy for `A` (`any::<bool>()`, …).
    pub fn any<A: Arbitrary>() -> A::Strategy {
        A::arbitrary()
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Element-count bounds for [`vec()`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.end > r.start, "empty size range");
            Self {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a sampled length.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// `prop::collection::vec(elem, len_range)`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.hi_inclusive - self.size.lo + 1;
            let len = self.size.lo + rng.below(span as u64) as usize;
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// Define property tests: `proptest! { #[test] fn p(x in 0.0f64..1.0) { … } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr; $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for __case in 0..__cfg.cases {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)*
                    // The closure gives `prop_assume!` an early-exit path.
                    let __one_case = || -> ::std::result::Result<(), ()> {
                        $body
                        Ok(())
                    };
                    let _ = __one_case();
                }
            }
        )*
    };
}

/// Assert inside a property (maps to `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Assert equality inside a property (maps to `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Skip the current case when the precondition fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        let __assumption_holds: bool = $cond;
        if !__assumption_holds {
            return Ok(());
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new()$(.or($arm))+
    };
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};

    /// `prop::collection::vec(...)` etc.
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_label() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        let mut c = TestRng::deterministic("y");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_sample_within_bounds() {
        let mut rng = TestRng::deterministic("bounds");
        for _ in 0..1000 {
            let f = Strategy::sample(&(0.25f64..0.75), &mut rng);
            assert!((0.25..0.75).contains(&f));
            let i = Strategy::sample(&(-3i32..=3), &mut rng);
            assert!((-3..=3).contains(&i));
        }
    }

    proptest! {
        #[test]
        fn macro_surface_works(
            x in 0.0f64..1.0,
            v in prop::collection::vec((-5i32..=5).prop_filter("nonzero", |d| *d != 0), 1..4),
            flag in any::<bool>(),
            pick in prop_oneof![Just(1u32), (10u32..20).prop_map(|k| k * 2)],
        ) {
            prop_assume!(x > 0.01);
            prop_assert!(x < 1.0);
            prop_assert!(v.iter().all(|d| *d != 0) && !v.is_empty());
            prop_assert!(usize::from(flag) <= 1);
            prop_assert!(pick == 1 || (20..40).contains(&pick), "pick = {pick}");
            prop_assert_eq!(v.len(), v.len());
        }
    }
}
