//! A minimal, self-contained subset of the `criterion` benchmarking API.
//!
//! The build environment has no crate-registry access, so the real
//! `criterion` cannot be fetched. This vendored stand-in keeps the
//! workspace's `[[bench]]` targets compiling and *running*: each
//! `Bencher::iter` call is warmed up, then timed over several batches, and
//! the median per-iteration time is printed in a `name ... time: [..]`
//! line loosely matching criterion's output. Statistical analysis, HTML
//! reports and comparison baselines are intentionally absent.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation (printed alongside timings).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus a parameter rendering.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("dopri5", 256)` → `dopri5/256`.
    pub fn new(name: impl std::fmt::Display, param: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{name}/{param}"),
        }
    }

    /// Id from the parameter alone.
    pub fn from_parameter(param: impl std::fmt::Display) -> Self {
        Self {
            id: param.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// Runs closures and reports per-iteration timing.
pub struct Bencher {
    /// Wall-clock budget for the measurement phase.
    measurement_time: Duration,
}

impl Bencher {
    fn measure<O, F: FnMut() -> O>(&mut self, mut f: F) -> Duration {
        // Warm-up: run until ~10% of the budget is spent (at least once),
        // and estimate the per-iteration cost.
        let warmup_budget = self.measurement_time / 10;
        let warm_start = Instant::now();
        let mut warm_iters: u32 = 0;
        loop {
            black_box(f());
            warm_iters += 1;
            if warm_start.elapsed() >= warmup_budget || warm_iters >= 1000 {
                break;
            }
        }
        let est = warm_start.elapsed() / warm_iters;

        // Measurement: several batches sized so each takes ~1/8 of the
        // budget; report the fastest batch (least-noise estimate).
        let batch = ((self.measurement_time.as_nanos() / 8).saturating_div(est.as_nanos().max(1)))
            .clamp(1, 1_000_000) as u32;
        let mut best = Duration::MAX;
        for _ in 0..8 {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let per_iter = t0.elapsed() / batch;
            best = best.min(per_iter);
        }
        best
    }

    /// Time `f`, reporting the per-iteration cost.
    pub fn iter<O, F: FnMut() -> O>(&mut self, f: F) {
        let per_iter = self.measure(f);
        print_time(per_iter);
    }
}

fn print_time(d: Duration) {
    let ns = d.as_nanos();
    let pretty = if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    };
    println!("time: [{pretty} {pretty} {pretty}]");
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Override the per-benchmark sample count (accepted, unused).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Override the measurement budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement_time = d;
        self
    }

    fn announce(&self, id: &BenchmarkId) {
        print!("{}/{}  ", self.name, id.id);
        if let Some(t) = self.throughput {
            match t {
                Throughput::Elements(n) => print!("(throughput: {n} elems/iter)  "),
                Throughput::Bytes(n) => print!("(throughput: {n} B/iter)  "),
            }
        }
    }

    /// Benchmark a closure.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.announce(&id);
        let mut b = Bencher {
            measurement_time: self.criterion.measurement_time,
        };
        f(&mut b);
        self
    }

    /// Benchmark a closure against one input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.announce(&id);
        let mut b = Bencher {
            measurement_time: self.criterion.measurement_time,
        };
        f(&mut b, input);
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
pub struct Criterion {
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // Short budget: these stand-in numbers guide optimization locally,
        // they are not archival statistics.
        Self {
            measurement_time: Duration::from_millis(400),
        }
    }
}

impl Criterion {
    /// Start a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== group {name}");
        BenchmarkGroup {
            name,
            throughput: None,
            criterion: self,
        }
    }

    /// Benchmark a closure outside a group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        print!("{}  ", id.id);
        let mut b = Bencher {
            measurement_time: self.measurement_time,
        };
        f(&mut b);
        self
    }

    /// Override the measurement budget.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
    (name = $group:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $cfg;
            $($target(&mut c);)+
        }
    };
}

/// Emit `fn main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fib(n: u64) -> u64 {
        if n < 2 {
            n
        } else {
            fib(n - 1) + fib(n - 2)
        }
    }

    #[test]
    fn group_bench_runs() {
        let mut c = Criterion::default().measurement_time(Duration::from_millis(20));
        let mut g = c.benchmark_group("smoke");
        g.throughput(Throughput::Elements(1));
        g.bench_function("fib10", |b| b.iter(|| fib(black_box(10))));
        g.bench_with_input(BenchmarkId::new("fib", 12), &12u64, |b, &n| {
            b.iter(|| fib(black_box(n)))
        });
        g.finish();
    }
}
